//! The multi-GPU cluster simulation: routers, schedulers, SLOs.
//!
//! Requests arrive from a workload generator, are *routed* to one
//! GPU's queue, and a per-GPU *scheduler* decides when to start work
//! and how many same-model requests to batch together. Service times
//! come from the profiler-grounded [`ServiceProfile`], so the paper's
//! batching regimes shape cluster behavior: a dynamic batcher gets huge
//! wins on memory-bound autoregressive decode and modest ones on
//! compute-bound diffusion.
//!
//! Everything runs on the deterministic [`EventQueue`]; the only
//! randomness is the seeded arrival process and model mix.
//!
//! # The fast path
//!
//! The simulator is built to push tens of millions of requests through
//! in seconds with memory independent of request count:
//!
//! - Request state lives in a **slot pool** with a free list; generation
//!   counters keep stale abandonment events from touching reused slots.
//!   Batch id-vectors are pooled too, and arrivals are pre-generated in
//!   batches, so the steady-state event loop does no per-request
//!   allocation.
//! - All telemetry handles are resolved **once per run** — the event
//!   loop pays one atomic op per observation, never a registry lookup.
//! - Aggregates stream into [`ServeStats`]: exact running sums plus
//!   bounded-memory [`QuantileSketch`]es (rank error documented in
//!   [`mmg_telemetry::sketch`]). Retaining every [`RequestRecord`] is
//!   opt-in via [`ScenarioCfg::full_records`] (the CLI's
//!   `--full-records`), which preserves the exact-quantile path.

use std::collections::VecDeque;

use mmg_models::ModelId;
use mmg_telemetry::burnrate::{
    AlertEvent, AlertKind, BurnRateEngine, RatchetDetector, RatchetEvent, SloPolicy,
};
use mmg_telemetry::{latency_buckets_s, Counter, Histogram, QuantileSketch, Registry};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::des::EventQueue;
use crate::flight::{Exemplars, FlightCfg, FlightRecorder};
use crate::profile::{ServiceCurve, ServiceProfile};
use crate::workload::{model_short_name, ArrivalGen, ArrivalProcess, RequestMix};

/// Relative rank-error bound of the streaming latency sketches: every
/// reported quantile has true rank within `eps * n + 1` of exact (see
/// [`mmg_telemetry::sketch`] for the bound's derivation and merge
/// semantics).
pub const LATENCY_SKETCH_EPS: f64 = 0.001;

/// How many arrival timestamps are pre-generated per refill of the
/// arrival buffer.
const ARRIVAL_BATCH: usize = 64;

/// Ratcheting-queue-depth detector defaults (see
/// [`mmg_telemetry::burnrate::RatchetDetector`]): consecutive growing
/// windows required, total growth factor, and absolute mean-depth floor.
const RATCHET_STREAK: usize = 3;
const RATCHET_GROWTH: f64 = 2.0;
// The floor sits above normal Poisson occupancy noise (window means of
// ~1-2 requests occur even at low utilization); genuine FIFO collapse
// blows past it within a few windows.
const RATCHET_MIN_DEPTH: f64 = 4.0;

/// An externally supplied arrival stream: each item is `(arrival time
/// in seconds, index into the scenario's [`RequestMix`] entries)`.
///
/// The default simulation draws arrival times and models internally
/// from the scenario's seeded generators; a source replaces both, which
/// is how the fleet layer feeds one deterministically split slice of a
/// global arrival stream into each cluster. Contract: times are
/// strictly increasing and mix indices are in range for the scenario's
/// mix. The simulation stops pulling at the first arrival past the
/// horizon (that arrival is consumed but not simulated), so a windowed
/// adapter should clip its stream at the horizon itself.
pub trait ArrivalSource {
    /// The next arrival, or `None` when the stream is exhausted.
    fn next_arrival(&mut self) -> Option<(f64, usize)>;
}

/// How arriving requests are assigned to a GPU queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Cycle through GPUs in order.
    RoundRobin,
    /// Send to the GPU with the least outstanding work (running remainder
    /// plus queued batch-1 service seconds).
    LeastWork,
    /// Partition GPUs by model (so same-model requests pool and batch),
    /// least-outstanding-work within a model's partition.
    ModelAffinity,
}

impl RouterKind {
    /// Parses a CLI router name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "rr" | "round-robin" => Ok(RouterKind::RoundRobin),
            "least-work" | "lw" => Ok(RouterKind::LeastWork),
            "affinity" | "model-affinity" => Ok(RouterKind::ModelAffinity),
            other => Err(format!(
                "unknown router '{other}'; expected round-robin | least-work | affinity"
            )),
        }
    }
}

/// When a GPU starts work and how many requests it batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// One request at a time, arrival order. No batching.
    Fifo,
    /// Classic static batching: wait until `batch` same-model requests
    /// are queued (or the head request has waited `wait_s`), then launch.
    Static {
        /// Target batch size.
        batch: usize,
        /// Maximum head-of-line wait before launching a partial batch.
        wait_s: f64,
    },
    /// Deadline-aware dynamic batching: launch as soon as the GPU is
    /// free, batching up to `max_batch` queued requests of the
    /// earliest-deadline request's model (earliest deadlines first).
    Dynamic {
        /// Batch-size cap.
        max_batch: usize,
    },
    /// Dynamic batching plus Section-V pod co-scheduling: when more work
    /// is waiting behind a launched batch, the pod interleaves the
    /// batch's stages with the next one's and the whole batch completes
    /// `pod_factor`× faster.
    Pods {
        /// Batch-size cap.
        max_batch: usize,
    },
}

impl SchedulerKind {
    /// Parses a CLI scheduler name, using `batch` as the batch target or
    /// cap where the scheduler has one.
    pub fn parse(name: &str, batch: usize) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "fifo" => Ok(SchedulerKind::Fifo),
            "static" => Ok(SchedulerKind::Static { batch, wait_s: 1.0 }),
            "dynamic" => Ok(SchedulerKind::Dynamic { max_batch: batch }),
            "pods" => Ok(SchedulerKind::Pods { max_batch: batch }),
            other => Err(format!(
                "unknown scheduler '{other}'; expected fifo | static | dynamic | pods"
            )),
        }
    }

    /// Scheduler name as printed in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Static { .. } => "static",
            SchedulerKind::Dynamic { .. } => "dynamic",
            SchedulerKind::Pods { .. } => "pods",
        }
    }
}

/// The latency deadline attached to each request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloSpec {
    /// No deadline; every completion attains the SLO.
    None,
    /// One absolute deadline for every model, seconds after arrival.
    FixedS(f64),
    /// Per-model deadline: `multiple ×` the model's batch-1 service time
    /// (heavier models get proportionally more headroom).
    ServiceMultiple(f64),
}

impl SloSpec {
    /// The deadline in seconds after arrival for a model served by
    /// `curve`.
    #[must_use]
    pub fn slo_s(&self, curve: &ServiceCurve) -> f64 {
        match *self {
            SloSpec::None => f64::INFINITY,
            SloSpec::FixedS(s) => s,
            SloSpec::ServiceMultiple(k) => k * curve.base_s(),
        }
    }
}

/// A complete serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCfg {
    /// Cluster size.
    pub gpus: usize,
    /// Request model mix.
    pub mix: RequestMix,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Request router.
    pub router: RouterKind,
    /// Per-GPU scheduler.
    pub scheduler: SchedulerKind,
    /// Deadline specification.
    pub slo: SloSpec,
    /// Arrival horizon, seconds: no requests arrive after this instant
    /// (in-flight work drains to completion).
    pub duration_s: f64,
    /// Stop generating arrivals after this many, regardless of horizon.
    pub max_requests: Option<u64>,
    /// Queued requests give up after waiting this long.
    pub abandon_after_s: Option<f64>,
    /// Admission control: arrivals finding this many requests queued
    /// cluster-wide are dropped.
    pub max_queue: Option<usize>,
    /// Retain a [`RequestRecord`] per completion (memory O(requests)).
    /// When `false`, only the constant-memory streaming aggregates in
    /// [`ServeStats`] are kept. `true` by default — the library keeps
    /// the exact path unless a caller opts into streaming; the CLI's
    /// default is streaming with `--full-records` to opt back in.
    pub full_records: bool,
    /// Reservoir size K of the always-on request-lifecycle
    /// [`Exemplars`] (uniform sample of completions; survives streaming
    /// mode). `0` disables the reservoir.
    pub exemplar_k: usize,
    /// Exact worst-latency lifecycles retained by the [`Exemplars`].
    /// `0` disables worst-retention.
    pub worst_n: usize,
    /// Per-phase latency attribution: stream queue/hold/execute
    /// quantile sketches per model and cluster-wide into
    /// [`ServeStats::phases`], plus `serve_phase_s` histograms in the
    /// registry. Off by default — the streaming fast path pays nothing
    /// for the layer when it is off. Attribution is pure observation and
    /// never changes the simulated trajectory.
    pub attrib: bool,
    /// Online SLO burn-rate alerting (plus the ratcheting-queue-depth
    /// detector): when set, an [`mmg_telemetry::burnrate::BurnRateEngine`]
    /// is driven from the completion stream and the resulting alert
    /// timeline lands in [`SimResult::health`] (and on the flight
    /// recorder's cluster lane when one is attached). `None` = off.
    pub slo_policy: Option<SloPolicy>,
    /// RNG seed for arrivals and mix sampling.
    pub seed: u64,
}

impl ScenarioCfg {
    /// A scenario with the common defaults: least-work routing, no
    /// abandonment, no admission control, full records retained.
    #[must_use]
    pub fn new(
        gpus: usize,
        mix: RequestMix,
        arrival: ArrivalProcess,
        scheduler: SchedulerKind,
        slo: SloSpec,
        duration_s: f64,
        seed: u64,
    ) -> Self {
        ScenarioCfg {
            gpus,
            mix,
            arrival,
            router: RouterKind::LeastWork,
            scheduler,
            slo,
            duration_s,
            max_requests: None,
            abandon_after_s: None,
            max_queue: None,
            full_records: true,
            exemplar_k: 8,
            worst_n: 4,
            attrib: false,
            slo_policy: None,
            seed,
        }
    }

    /// Enables the full observability layer: phase attribution plus the
    /// scaled paging burn-rate policy for `objective` over this
    /// scenario's horizon.
    #[must_use]
    pub fn with_health(mut self, objective: f64) -> Self {
        self.attrib = true;
        self.slo_policy = Some(SloPolicy::paging(objective, self.duration_s));
        self
    }
}

/// One served request's lifecycle, in virtual seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Arrival-order id.
    pub id: u64,
    /// Model requested.
    pub model: ModelId,
    /// Arrival instant.
    pub arrival_s: f64,
    /// Service start instant.
    pub start_s: f64,
    /// Completion instant.
    pub finish_s: f64,
    /// Absolute deadline (`+inf` when no SLO).
    pub deadline_s: f64,
    /// GPU that served it.
    pub gpu: usize,
    /// Size of the batch it was served in.
    pub batch: usize,
    /// Requests in the system at its arrival, itself included — the
    /// exact queue-depth-seen-by-arrivals statistic.
    pub depth_at_arrival: u64,
    /// Queue-phase wait: seconds the serving GPU spent *busy with other
    /// work* while this request was queued (waiting its turn).
    pub queue_s: f64,
    /// Batch-formation (hold) phase: seconds the GPU sat idle while the
    /// scheduler deliberately withheld launch (static batching's timer
    /// waiting to fill a batch). `wait = queue + hold` by construction.
    pub hold_s: f64,
    /// Execution phase: service time of the batch the request rode in.
    /// Stored as the conserving residual (see [`conserving_execute_s`]),
    /// so `queue_s + hold_s + execute_s` reproduces
    /// [`RequestRecord::latency_s`] bit-exactly.
    pub execute_s: f64,
}

impl RequestRecord {
    /// Queueing delay (queue + hold phases).
    #[must_use]
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    /// End-to-end sojourn.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Admission-wait phase. Admission control in this model decides
    /// instantaneously at arrival (admit or drop), so completed requests
    /// always report zero here; the phase exists in the schema so the
    /// conservation invariant — and downstream consumers — survive a
    /// future admission queue unchanged.
    #[must_use]
    pub fn admission_s(&self) -> f64 {
        0.0
    }

    /// Whether the request met its deadline.
    #[must_use]
    pub fn on_time(&self) -> bool {
        self.finish_s <= self.deadline_s
    }
}

/// The execute-phase duration that makes the per-request phase
/// decomposition conserve exactly: returns `e` such that
/// `(queue_s + hold_s) + e == latency_s` *bitwise*. The naive residual
/// `latency - (queue + hold)` is already within one ulp; the feedback
/// loop absorbs the rare half-ulp tie where IEEE rounding would leave
/// the sum one ulp off. Conservation is a tested invariant — reports
/// attribute 100% of every request's latency, never 100%±ε.
fn conserving_execute_s(queue_s: f64, hold_s: f64, latency_s: f64) -> f64 {
    let split = queue_s + hold_s;
    let mut e = latency_s - split;
    for _ in 0..4 {
        let sum = split + e;
        if sum == latency_s {
            break;
        }
        e += latency_s - sum;
    }
    e
}

/// Streaming per-phase attribution aggregates: one GK sketch plus an
/// exact running sum per lifecycle phase (queue, hold, execute — the
/// admission phase is structurally zero, see
/// [`RequestRecord::admission_s`]). Memory is independent of request
/// count; sketch quantiles carry the documented `±(eps·n + 1)` rank
/// bound of [`LATENCY_SKETCH_EPS`]. Only maintained when
/// [`ScenarioCfg::attrib`] is on.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Queue-phase sketch (GPU busy with other work).
    pub queue: QuantileSketch,
    /// Hold-phase sketch (scheduler withheld launch on an idle GPU).
    pub hold: QuantileSketch,
    /// Execute-phase sketch (batch service time).
    pub execute: QuantileSketch,
    /// Exact sum of queue-phase seconds.
    pub queue_sum_s: f64,
    /// Exact sum of hold-phase seconds.
    pub hold_sum_s: f64,
    /// Exact sum of execute-phase seconds.
    pub execute_sum_s: f64,
}

impl PhaseStats {
    /// An empty attribution aggregate.
    #[must_use]
    pub fn new() -> Self {
        PhaseStats {
            queue: QuantileSketch::new(LATENCY_SKETCH_EPS),
            hold: QuantileSketch::new(LATENCY_SKETCH_EPS),
            execute: QuantileSketch::new(LATENCY_SKETCH_EPS),
            queue_sum_s: 0.0,
            hold_sum_s: 0.0,
            execute_sum_s: 0.0,
        }
    }

    fn observe(&mut self, queue_s: f64, hold_s: f64, execute_s: f64) {
        self.queue.observe(queue_s);
        self.hold.observe(hold_s);
        self.execute.observe(execute_s);
        self.queue_sum_s += queue_s;
        self.hold_sum_s += hold_s;
        self.execute_sum_s += execute_s;
    }

    fn flush(&mut self) {
        self.queue.flush();
        self.hold.flush();
        self.execute.flush();
    }

    /// Pools another run's attribution into this one (sketch merges add
    /// absolute rank errors, see [`mmg_telemetry::sketch`]). Used by the
    /// replicated experiments to aggregate per-seed phase sketches.
    pub fn merge_from(&mut self, other: &PhaseStats) {
        self.queue.merge(&other.queue);
        self.hold.merge(&other.hold);
        self.execute.merge(&other.execute);
        self.queue_sum_s += other.queue_sum_s;
        self.hold_sum_s += other.hold_sum_s;
        self.execute_sum_s += other.execute_sum_s;
    }
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats::new()
    }
}

/// Streaming per-model aggregates: exact sums and counts plus a
/// bounded-memory latency quantile sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// The model.
    pub model: ModelId,
    /// Completed requests.
    pub completed: u64,
    /// Completions that met their deadline.
    pub on_time: u64,
    /// Exact sum of queueing delays.
    pub wait_sum_s: f64,
    /// Exact sum of end-to-end latencies.
    pub latency_sum_s: f64,
    /// Sum of the batch sizes each completion was served in.
    pub batch_sum: u64,
    /// Global completion index of this model's first completion
    /// (`u64::MAX` if it never completed) — reports list models in
    /// first-completion order, matching the exact path.
    pub first_done_seq: u64,
    /// Latency sketch (rank error [`LATENCY_SKETCH_EPS`]).
    pub latency_sketch: QuantileSketch,
    /// Per-phase attribution, when [`ScenarioCfg::attrib`] is on.
    pub phases: Option<PhaseStats>,
}

impl ModelStats {
    fn new(model: ModelId, attrib: bool) -> Self {
        ModelStats {
            model,
            completed: 0,
            on_time: 0,
            wait_sum_s: 0.0,
            latency_sum_s: 0.0,
            batch_sum: 0,
            first_done_seq: u64::MAX,
            latency_sketch: QuantileSketch::new(LATENCY_SKETCH_EPS),
            phases: attrib.then(PhaseStats::new),
        }
    }
}

/// Streaming aggregates maintained on every run — cluster-wide running
/// sums and quantile sketches whose memory is independent of request
/// count. This is the only completion accounting in the default
/// (streaming) mode; with [`ScenarioCfg::full_records`] it coexists with
/// the exact per-request records.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Completed requests.
    pub completed: u64,
    /// Completions that met their deadline.
    pub on_time: u64,
    /// Exact sum of queueing delays.
    pub wait_sum_s: f64,
    /// Exact sum of end-to-end latencies.
    pub latency_sum_s: f64,
    /// Sum of served batch sizes across completions.
    pub batch_sum: u64,
    /// Cluster-wide latency sketch (rank error [`LATENCY_SKETCH_EPS`]).
    pub latency_sketch: QuantileSketch,
    /// Per-model aggregates, in mix declaration order.
    pub per_model: Vec<ModelStats>,
    /// Request-lifecycle exemplars: a seeded uniform sample of
    /// completions plus the exact worst-latency lifecycles. Maintained
    /// in both modes, so streaming runs keep explainable tails.
    pub exemplars: Exemplars,
    /// Cluster-wide per-phase attribution, when [`ScenarioCfg::attrib`]
    /// is on.
    pub phases: Option<PhaseStats>,
}

impl ServeStats {
    fn new(mix: &RequestMix, seed: u64, exemplar_k: usize, worst_n: usize, attrib: bool) -> Self {
        ServeStats {
            completed: 0,
            on_time: 0,
            wait_sum_s: 0.0,
            latency_sum_s: 0.0,
            batch_sum: 0,
            latency_sketch: QuantileSketch::new(LATENCY_SKETCH_EPS),
            per_model: mix
                .entries()
                .iter()
                .map(|(m, _)| ModelStats::new(*m, attrib))
                .collect(),
            exemplars: Exemplars::new(exemplar_k, worst_n, seed),
            phases: attrib.then(PhaseStats::new),
        }
    }
}

/// The SLO-health outcome of a run: every burn-rate alert and ratchet
/// transition the online engine produced, plus the policy that produced
/// them. Present on [`SimResult::health`] when
/// [`ScenarioCfg::slo_policy`] was set.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The policy the engine evaluated.
    pub policy: SloPolicy,
    /// Burn-rate fire/clear transitions, in evaluation order.
    pub alerts: Vec<AlertEvent>,
    /// Ratcheting-queue-depth transitions, in evaluation order.
    pub ratchet: Vec<RatchetEvent>,
}

impl HealthReport {
    /// Simulated time of the first burn-rate `Fire`, if any fired.
    #[must_use]
    pub fn time_to_first_alert_s(&self) -> Option<f64> {
        self.alerts
            .iter()
            .find(|e| e.kind == AlertKind::Fire)
            .map(|e| e.t_s)
    }

    /// Simulated time of the first ratchet `Fire`, if any fired.
    #[must_use]
    pub fn time_to_first_ratchet_s(&self) -> Option<f64> {
        self.ratchet
            .iter()
            .find(|e| e.kind == AlertKind::Fire)
            .map(|e| e.t_s)
    }
}

/// Energy accounting for one run, present on [`SimResult::energy`] when
/// the [`ServiceProfile`] carried power figures
/// ([`ServiceProfile::has_power`]). Busy spans were integrated at each
/// model's modeled draw as batches launched; the idle remainder of every
/// GPU's clock is charged at [`EnergyStats::idle_w`] by the accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyStats {
    /// Board draw of an idle GPU, watts.
    pub idle_w: f64,
    /// Busy-span energy per GPU, joules (`Σ service_s × draw_w` over the
    /// batches it ran).
    pub busy_energy_j: Vec<f64>,
    /// Busy seconds per model, mix order.
    pub model_busy_s: Vec<f64>,
    /// Modeled running draw per model, watts, mix order.
    pub model_draw_w: Vec<f64>,
}

impl EnergyStats {
    /// Busy-span energy attributed to mix entry `i`, joules.
    #[must_use]
    pub fn model_energy_j(&self, i: usize) -> f64 {
        self.model_busy_s[i] * self.model_draw_w[i]
    }
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Completed requests in completion order. Empty when the scenario
    /// ran with [`ScenarioCfg::full_records`] off — use [`SimResult::stats`]
    /// then.
    pub records: Vec<RequestRecord>,
    /// Streaming aggregates (always filled, both modes).
    pub stats: ServeStats,
    /// Requests generated (admitted or not).
    pub arrivals: u64,
    /// Requests rejected by admission control.
    pub dropped: u64,
    /// Requests that abandoned the queue.
    pub abandoned: u64,
    /// Requests queued or in service when the clock first crossed the
    /// arrival horizon, counted from the live data structures.
    pub in_flight_at_horizon: u64,
    /// The arrival horizon.
    pub horizon_s: f64,
    /// Time the last event fired (drain end).
    pub end_s: f64,
    /// `∫ n(t) dt` over the whole run, where `n` is the number of
    /// requests in the system — time-average occupancy times duration,
    /// tracked independently of the per-request records for the
    /// Little's-law cross-check.
    pub area_requests_s: f64,
    /// Total queueing delay accrued by abandoned requests (their
    /// contribution to the occupancy integral).
    pub abandoned_wait_s: f64,
    /// Busy seconds per GPU.
    pub busy_s: Vec<f64>,
    /// SLO burn-rate alert + ratchet timeline, when
    /// [`ScenarioCfg::slo_policy`] was set.
    pub health: Option<HealthReport>,
    /// Energy accounting, when the profile carried power figures.
    pub energy: Option<EnergyStats>,
    /// Indices into `records` sorted by arrival id, computed once at the
    /// end of the run so [`SimResult::records_by_arrival`] never re-sorts.
    arrival_order: Vec<u32>,
}

impl SimResult {
    /// Completed records sorted by arrival (id) order. Uses the sort
    /// computed once at construction — calling this repeatedly is cheap.
    #[must_use]
    pub fn records_by_arrival(&self) -> Vec<&RequestRecord> {
        debug_assert_eq!(self.arrival_order.len(), self.records.len());
        self.arrival_order
            .iter()
            .map(|&i| &self.records[i as usize])
            .collect()
    }

    /// Mean cluster utilization: busy GPU-seconds over `gpus × end`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.end_s <= 0.0 {
            return 0.0;
        }
        self.busy_s.iter().sum::<f64>() / (self.busy_s.len() as f64 * self.end_s)
    }

    /// Completions per second over the horizon.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        self.stats.completed as f64 / self.horizon_s.min(self.end_s).max(f64::MIN_POSITIVE)
    }

    /// On-time completions per second over the horizon — the SLO-aware
    /// throughput ("goodput").
    #[must_use]
    pub fn goodput_rps(&self) -> f64 {
        self.stats.on_time as f64 / self.horizon_s.min(self.end_s).max(f64::MIN_POSITIVE)
    }

    /// Modeled energy one GPU drew over the whole run, joules: its busy
    /// spans at each batch's model draw plus its idle remainder at idle
    /// draw. `None` when the profile carried no power figures.
    #[must_use]
    pub fn gpu_energy_j(&self, gpu: usize) -> Option<f64> {
        self.energy.as_ref().map(|e| {
            e.busy_energy_j[gpu] + (self.end_s - self.busy_s[gpu]).max(0.0) * e.idle_w
        })
    }

    /// Modeled cluster energy over the run, joules.
    #[must_use]
    pub fn total_energy_j(&self) -> Option<f64> {
        self.energy
            .as_ref()
            .map(|_| (0..self.busy_s.len()).map(|g| self.gpu_energy_j(g).expect("energy on")).sum())
    }

    /// Modeled cluster energy over the run, watt-hours.
    #[must_use]
    pub fn total_energy_wh(&self) -> Option<f64> {
        self.total_energy_j().map(|j| j / 3600.0)
    }

    /// Mean modeled board draw per GPU over the run, watts.
    #[must_use]
    pub fn mean_power_w(&self) -> Option<f64> {
        self.total_energy_j().map(|j| {
            if self.end_s > 0.0 {
                j / (self.end_s * self.busy_s.len() as f64)
            } else {
                0.0
            }
        })
    }

    /// Fraction of completed requests that met their deadline.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.stats.completed == 0 {
            return 1.0;
        }
        self.stats.on_time as f64 / self.stats.completed as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival,
    Depart { gpu: usize },
    Timeout { gpu: usize },
    Abandon { slot: u32, gen: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Vacant,
    Queued,
    Running,
    Done,
    Abandoned,
}

/// Pooled per-request state. Slots are recycled through a free list;
/// `gen` increments on every free so events holding a `(slot, gen)`
/// reference (abandonment timers) can detect that their request is gone
/// and the slot now belongs to someone else.
#[derive(Debug)]
struct ReqState {
    model: ModelId,
    mix_idx: u32,
    gen: u32,
    gpu: u32,
    arrival_id: u64,
    arrival_s: f64,
    deadline_s: f64,
    depth_at_arrival: u64,
    base_s: f64,
    status: Status,
    /// GPU busy-seconds *completed* on this request's GPU at its arrival
    /// (the in-flight batch counts only its elapsed portion). The launch
    /// re-reads the same meter; the delta is the queue-phase wait.
    busy_done_at_arrival: f64,
    /// Queue-phase wait, fixed at launch.
    queue_wait_s: f64,
    /// Hold-phase wait, fixed at launch (`wait - queue`, clamped so both
    /// phases are non-negative and sum to the wait exactly).
    hold_wait_s: f64,
}

#[derive(Debug)]
struct RunningBatch {
    ids: Vec<u32>,
    start_s: f64,
    finish_s: f64,
}

/// Per-model state resolved once at simulation start so the event loop
/// never scans the mix, the profile, or the metric registry.
struct ModelInfo<'a> {
    model: ModelId,
    curve: &'a ServiceCurve,
    base_s: f64,
    /// Modeled board draw while a batch of this model runs, watts
    /// (0 when the profile carries no power figures).
    draw_w: f64,
    /// Deadline delta after arrival (`+inf` for no SLO).
    slo_delta_s: f64,
    requests_c: Counter,
    slo_miss_c: Counter,
    wait_h: Histogram,
    latency_h: Histogram,
    /// `serve_phase_s{model,phase}` histograms (queue, hold, execute),
    /// resolved only when attribution is on.
    phase_h: Option<[Histogram; 3]>,
}

/// Online health state driven by the event loop: the burn-rate engine
/// eats the completion stream, the ratchet detector eats per-window mean
/// queue depths accumulated from the same occupancy spans that feed the
/// Little's-law integral.
struct HealthMonitor {
    engine: BurnRateEngine,
    ratchet: RatchetDetector,
    window_s: f64,
    depth_win_idx: u64,
    depth_area_s: f64,
}

impl HealthMonitor {
    fn new(policy: SloPolicy) -> Self {
        let window_s = policy.window_s;
        HealthMonitor {
            engine: BurnRateEngine::new(policy),
            ratchet: RatchetDetector::new(RATCHET_STREAK, RATCHET_GROWTH, RATCHET_MIN_DEPTH),
            window_s,
            depth_win_idx: 0,
            depth_area_s: 0.0,
        }
    }

    /// Accumulates the occupancy span `[t0, t1) × depth` into the
    /// ratchet windows, closing (and evaluating) every window boundary
    /// the span crosses. Spans arrive contiguously from t=0, so the
    /// window index advances monotonically.
    fn on_span(&mut self, t0_s: f64, t1_s: f64, depth: f64) {
        let w = self.window_s;
        let mut t = t0_s;
        while t < t1_s {
            let end = (self.depth_win_idx + 1) as f64 * w;
            let seg = t1_s.min(end);
            self.depth_area_s += depth * (seg - t);
            if seg >= end {
                self.ratchet.push(end, self.depth_area_s / w);
                self.depth_area_s = 0.0;
                self.depth_win_idx += 1;
            }
            t = seg;
        }
    }

    /// Final evaluation at the end of the run: the engine closes its
    /// trailing partial window; the ratchet sees the partial depth
    /// window at its true (elapsed-time) mean.
    fn finish(&mut self, t_end_s: f64) {
        self.engine.finish(t_end_s);
        let elapsed = t_end_s - self.depth_win_idx as f64 * self.window_s;
        if elapsed > 0.0 && self.depth_area_s > 0.0 {
            self.ratchet.push(t_end_s, self.depth_area_s / elapsed);
            self.depth_area_s = 0.0;
        }
    }
}

struct Sim<'a> {
    cfg: &'a ScenarioCfg,
    queue: EventQueue<Event>,
    per_model: Vec<ModelInfo<'a>>,
    reqs: Vec<ReqState>,
    free: Vec<u32>,
    gpu_queues: Vec<VecDeque<u32>>,
    queued_work_s: Vec<f64>,
    queued_count: usize,
    running: Vec<Option<RunningBatch>>,
    vec_pool: Vec<Vec<u32>>,
    busy_s: Vec<f64>,
    /// Busy-span energy per GPU, joules: every launch adds
    /// `service_s × draw_w`. Zero cost when the profile is unmetered
    /// (draw is 0) — the accumulate is branch-free.
    energy_j: Vec<f64>,
    /// Busy seconds per model (mix order) — the energy report's
    /// J-per-request attribution base.
    model_busy_s: Vec<f64>,
    rr_next: usize,
    arrivals: u64,
    dropped: u64,
    abandoned: u64,
    abandoned_wait_s: f64,
    records: Vec<RequestRecord>,
    stats: ServeStats,
    batch_h: Histogram,
    drops_c: Counter,
    abandons_c: Counter,
    mix_rng: StdRng,
    unit: Uniform<f64>,
    arrival_gen: ArrivalGen,
    arrival_buf: VecDeque<f64>,
    last_gen_t: f64,
    /// External arrival stream, when the caller supplied one
    /// ([`simulate_stream`]). `None` keeps the seeded-generator path
    /// byte-identical to before the hook existed.
    source: Option<&'a mut dyn ArrivalSource>,
    /// Mix index of the one scheduled-but-unprocessed stream arrival.
    pending_mix: Option<usize>,
    area_requests_s: f64,
    last_event_s: f64,
    in_system: u64,
    in_flight_at_horizon: u64,
    horizon_snapped: bool,
    /// Flight recorder, when the caller asked for one
    /// ([`simulate_recorded`]). `None` keeps the fast path untouched:
    /// every hook site is guarded by an `Option` check.
    flight: Option<FlightRecorder>,
    /// SLO health engine, when [`ScenarioCfg::slo_policy`] is set. Same
    /// contract as `flight`: `None` costs the fast path nothing.
    health: Option<HealthMonitor>,
}

impl<'a> Sim<'a> {
    /// Next arrival instant; refills the pre-generated batch when empty.
    /// The chained `next_after` recurrence is unchanged, so the sample
    /// path is identical to drawing one arrival at a time. With an
    /// external [`ArrivalSource`], pulls from it instead (`+inf` marks
    /// exhaustion — past every horizon, so nothing gets scheduled).
    fn next_arrival(&mut self) -> f64 {
        if let Some(src) = self.source.as_mut() {
            return match src.next_arrival() {
                Some((t, mix_idx)) => {
                    debug_assert!(self.pending_mix.is_none(), "unconsumed stream arrival");
                    self.pending_mix = Some(mix_idx);
                    t
                }
                None => f64::INFINITY,
            };
        }
        if self.arrival_buf.is_empty() {
            let mut t = self.last_gen_t;
            for _ in 0..ARRIVAL_BATCH {
                t = self.arrival_gen.next_after(t);
                self.arrival_buf.push_back(t);
            }
            self.last_gen_t = t;
        }
        self.arrival_buf.pop_front().expect("refilled above")
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            slot
        } else {
            self.reqs.push(ReqState {
                model: ModelId::StableDiffusion,
                mix_idx: 0,
                gen: 0,
                gpu: 0,
                arrival_id: 0,
                arrival_s: 0.0,
                deadline_s: 0.0,
                depth_at_arrival: 0,
                base_s: 0.0,
                status: Status::Vacant,
                busy_done_at_arrival: 0.0,
                queue_wait_s: 0.0,
                hold_wait_s: 0.0,
            });
            (self.reqs.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, slot: u32) {
        let st = &mut self.reqs[slot as usize];
        st.gen = st.gen.wrapping_add(1);
        self.free.push(slot);
    }

    fn route(&mut self, mix_idx: usize) -> usize {
        match self.cfg.router {
            RouterKind::RoundRobin => {
                let gpu = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.cfg.gpus;
                gpu
            }
            RouterKind::LeastWork => self.least_work_of(0..self.cfg.gpus),
            RouterKind::ModelAffinity => {
                let n_models = self.per_model.len();
                if self.cfg.gpus >= n_models {
                    self.least_work_of(
                        (0..self.cfg.gpus).filter(|g| g % n_models == mix_idx),
                    )
                } else {
                    mix_idx % self.cfg.gpus
                }
            }
        }
    }

    fn least_work_of(&self, gpus: impl Iterator<Item = usize>) -> usize {
        let now = self.queue.now_s();
        gpus.map(|g| {
            let remaining = self.running[g]
                .as_ref()
                .map_or(0.0, |b| (b.finish_s - now).max(0.0));
            (g, remaining + self.queued_work_s[g])
        })
        // Strictly-less comparison keeps the first (lowest-index) GPU on
        // ties, so routing is deterministic.
        .fold(None::<(usize, f64)>, |best, cand| match best {
            Some((_, w)) if w <= cand.1 => best,
            _ => Some(cand),
        })
        .expect("at least one gpu")
        .0
    }

    /// Fills `out` with the batch to launch on `gpu`, or returns the
    /// instant to re-try at (static batching waiting out its timer).
    fn plan_batch(&self, gpu: usize, out: &mut Vec<u32>) -> Result<(), Option<f64>> {
        let q = &self.gpu_queues[gpu];
        if q.is_empty() {
            return Err(None);
        }
        let now = self.queue.now_s();
        match self.cfg.scheduler {
            SchedulerKind::Fifo => {
                out.push(q[0]);
                Ok(())
            }
            SchedulerKind::Static { batch, wait_s } => {
                let head = q[0];
                let model = self.reqs[head as usize].model;
                let target = batch.max(1);
                for &slot in q.iter() {
                    if self.reqs[slot as usize].model == model {
                        out.push(slot);
                        if out.len() >= target {
                            break;
                        }
                    }
                }
                let deadline = self.reqs[head as usize].arrival_s + wait_s;
                if out.len() >= target || now + 1e-12 >= deadline {
                    Ok(())
                } else {
                    out.clear();
                    Err(Some(deadline))
                }
            }
            SchedulerKind::Dynamic { max_batch } | SchedulerKind::Pods { max_batch } => {
                // Earliest-deadline-first leader, then same-model members
                // also in deadline order (ties in arrival order).
                let leader = q
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        self.reqs[a as usize]
                            .deadline_s
                            .total_cmp(&self.reqs[b as usize].deadline_s)
                            .then(
                                self.reqs[a as usize]
                                    .arrival_id
                                    .cmp(&self.reqs[b as usize].arrival_id),
                            )
                    })
                    .expect("non-empty queue");
                let model = self.reqs[leader as usize].model;
                out.extend(
                    q.iter().copied().filter(|&s| self.reqs[s as usize].model == model),
                );
                out.sort_by(|&a, &b| {
                    self.reqs[a as usize]
                        .deadline_s
                        .total_cmp(&self.reqs[b as usize].deadline_s)
                        .then(
                            self.reqs[a as usize]
                                .arrival_id
                                .cmp(&self.reqs[b as usize].arrival_id),
                        )
                });
                out.truncate(max_batch.max(1));
                Ok(())
            }
        }
    }

    /// Launches work on an idle `gpu` if its scheduler agrees.
    fn try_dispatch(&mut self, gpu: usize) {
        if self.running[gpu].is_some() {
            return;
        }
        let mut members = self.vec_pool.pop().unwrap_or_default();
        members.clear();
        match self.plan_batch(gpu, &mut members) {
            Ok(()) => {}
            Err(retry) => {
                self.vec_pool.push(members);
                if let Some(retry_at) = retry {
                    if retry_at > self.queue.now_s() {
                        self.queue.schedule(retry_at, Event::Timeout { gpu });
                        if let Some(fl) = self.flight.as_mut() {
                            fl.on_hold(self.queue.now_s(), gpu, retry_at);
                        }
                    }
                }
                return;
            }
        }
        let now = self.queue.now_s();
        let mix_idx = self.reqs[members[0] as usize].mix_idx as usize;
        let curve: &ServiceCurve = self.per_model[mix_idx].curve;
        let mut service_s = curve.batch_s(members.len());
        // Busy meter at launch: the GPU is idle here, so `busy_s` equals
        // completed busy seconds. The delta against each member's arrival
        // stamp is its queue-phase wait (GPU busy with other work); the
        // rest of the wait is the hold phase (scheduler withheld launch
        // on an idle GPU). Clamping keeps both non-negative against
        // float association error in the busy accumulator.
        let busy_done_now = self.busy_s[gpu];
        for &slot in &members {
            let st = &mut self.reqs[slot as usize];
            st.status = Status::Running;
            let wait = (now - st.arrival_s).max(0.0);
            st.queue_wait_s = (busy_done_now - st.busy_done_at_arrival).clamp(0.0, wait);
            st.hold_wait_s = wait - st.queue_wait_s;
            self.queued_work_s[gpu] -= st.base_s;
            let q = &mut self.gpu_queues[gpu];
            let pos = q.iter().position(|&x| x == slot).expect("queued member");
            q.remove(pos);
            self.queued_count -= 1;
        }
        self.queued_work_s[gpu] = self.queued_work_s[gpu].max(0.0);
        // Pod co-scheduling pays off when another batch is waiting to
        // interleave with this one (Section V: denoising pods overlap
        // compute- and memory-bound stages of concurrent requests).
        let mut pod_applied = false;
        if matches!(self.cfg.scheduler, SchedulerKind::Pods { .. })
            && !self.gpu_queues[gpu].is_empty()
        {
            service_s /= curve.pod_factor.max(1.0);
            pod_applied = true;
        }
        let finish_s = now + service_s;
        self.busy_s[gpu] += service_s;
        let draw_w = self.per_model[mix_idx].draw_w;
        self.energy_j[gpu] += service_s * draw_w;
        self.model_busy_s[mix_idx] += service_s;
        self.batch_h.observe(members.len() as f64);
        if let Some(fl) = self.flight.as_mut() {
            let wait_max_s = members
                .iter()
                .map(|&s| now - self.reqs[s as usize].arrival_s)
                .fold(0.0f64, f64::max);
            fl.on_launch(
                gpu,
                self.per_model[mix_idx].model,
                members.len(),
                now,
                finish_s,
                wait_max_s,
                self.gpu_queues[gpu].len(),
                pod_applied,
                draw_w,
            );
        }
        self.running[gpu] = Some(RunningBatch { ids: members, start_s: now, finish_s });
        self.queue.schedule(finish_s, Event::Depart { gpu });
    }

    fn on_arrival(&mut self) {
        let now = self.queue.now_s();
        let arrival_id = self.arrivals;
        self.arrivals += 1;
        let mix_idx = match self.pending_mix.take() {
            Some(idx) => {
                assert!(idx < self.per_model.len(), "stream mix index out of range");
                idx
            }
            None => {
                let u: f64 = self.unit.sample(&mut self.mix_rng);
                self.cfg.mix.sample_index(u)
            }
        };
        let info = &self.per_model[mix_idx];
        let model = info.model;
        let deadline_s = now + info.slo_delta_s;
        let base_s = info.base_s;
        info.requests_c.inc();
        if let Some(fl) = self.flight.as_mut() {
            fl.on_arrival(now);
        }
        if let Some(cap) = self.cfg.max_queue {
            if self.queued_count >= cap {
                self.dropped += 1;
                self.drops_c.inc();
                if let Some(fl) = self.flight.as_mut() {
                    fl.on_drop(now);
                }
                return;
            }
        }
        self.in_system += 1;
        let depth_at_arrival = self.in_system;
        let gpu = self.route(mix_idx);
        let slot = self.alloc_slot();
        // Phase-attribution meter: busy seconds the GPU has *completed*
        // by now. The in-flight batch (if any) was pre-credited its full
        // service at launch, so subtract the portion still to run.
        let busy_done_at_arrival = self.busy_s[gpu]
            - self.running[gpu]
                .as_ref()
                .map_or(0.0, |b| (b.finish_s - now).max(0.0));
        {
            let st = &mut self.reqs[slot as usize];
            st.model = model;
            st.mix_idx = mix_idx as u32;
            st.gpu = gpu as u32;
            st.arrival_id = arrival_id;
            st.arrival_s = now;
            st.deadline_s = deadline_s;
            st.depth_at_arrival = depth_at_arrival;
            st.base_s = base_s;
            st.status = Status::Queued;
            st.busy_done_at_arrival = busy_done_at_arrival;
        }
        self.gpu_queues[gpu].push_back(slot);
        self.queued_count += 1;
        self.queued_work_s[gpu] += base_s;
        if let Some(patience_s) = self.cfg.abandon_after_s {
            let gen = self.reqs[slot as usize].gen;
            self.queue.schedule(now + patience_s, Event::Abandon { slot, gen });
        }
        self.try_dispatch(gpu);
    }

    fn on_depart(&mut self, gpu: usize) {
        let batch = self.running[gpu].take().expect("depart from idle gpu");
        let size = batch.ids.len();
        for i in 0..size {
            let slot = batch.ids[i];
            let st = &mut self.reqs[slot as usize];
            st.status = Status::Done;
            let model = st.model;
            let mix_idx = st.mix_idx as usize;
            let arrival_id = st.arrival_id;
            let arrival_s = st.arrival_s;
            let deadline_s = st.deadline_s;
            let depth_at_arrival = st.depth_at_arrival;
            let queue_s = st.queue_wait_s;
            let hold_s = st.hold_wait_s;
            self.in_system -= 1;
            self.free_slot(slot);

            let wait_s = batch.start_s - arrival_s;
            let latency_s = batch.finish_s - arrival_s;
            let on_time = batch.finish_s <= deadline_s;
            let execute_s = conserving_execute_s(queue_s, hold_s, latency_s);

            let info = &self.per_model[mix_idx];
            info.wait_h.observe(wait_s);
            info.latency_h.observe(latency_s);
            if !on_time {
                info.slo_miss_c.inc();
            }
            if let Some(ph) = info.phase_h.as_ref() {
                ph[0].observe(queue_s);
                ph[1].observe(hold_s);
                ph[2].observe(execute_s);
            }
            if let Some(hm) = self.health.as_mut() {
                hm.engine.record(batch.finish_s, on_time);
            }

            let ms = &mut self.stats.per_model[mix_idx];
            if ms.first_done_seq == u64::MAX {
                ms.first_done_seq = self.stats.completed;
            }
            ms.completed += 1;
            ms.on_time += u64::from(on_time);
            ms.wait_sum_s += wait_s;
            ms.latency_sum_s += latency_s;
            ms.batch_sum += size as u64;
            ms.latency_sketch.observe(latency_s);
            if let Some(ph) = ms.phases.as_mut() {
                ph.observe(queue_s, hold_s, execute_s);
            }
            self.stats.completed += 1;
            self.stats.on_time += u64::from(on_time);
            self.stats.wait_sum_s += wait_s;
            self.stats.latency_sum_s += latency_s;
            self.stats.batch_sum += size as u64;
            self.stats.latency_sketch.observe(latency_s);
            if let Some(ph) = self.stats.phases.as_mut() {
                ph.observe(queue_s, hold_s, execute_s);
            }
            self.stats.exemplars.observe(latency_s, arrival_id, || RequestRecord {
                id: arrival_id,
                model,
                arrival_s,
                start_s: batch.start_s,
                finish_s: batch.finish_s,
                deadline_s,
                gpu,
                batch: size,
                depth_at_arrival,
                queue_s,
                hold_s,
                execute_s,
            });
            if let Some(fl) = self.flight.as_mut() {
                fl.on_complete(batch.finish_s, latency_s, on_time);
            }

            if self.cfg.full_records {
                self.records.push(RequestRecord {
                    id: arrival_id,
                    model,
                    arrival_s,
                    start_s: batch.start_s,
                    finish_s: batch.finish_s,
                    deadline_s,
                    gpu,
                    batch: size,
                    depth_at_arrival,
                    queue_s,
                    hold_s,
                    execute_s,
                });
            }
        }
        let mut ids = batch.ids;
        ids.clear();
        self.vec_pool.push(ids);
        self.try_dispatch(gpu);
    }

    fn on_abandon(&mut self, slot: u32, gen: u32) {
        {
            let st = &self.reqs[slot as usize];
            // A stale timer: the request already departed (or abandoned)
            // and the slot may have been recycled since.
            if st.gen != gen || st.status != Status::Queued {
                return;
            }
        }
        let now = self.queue.now_s();
        let gpu = self.reqs[slot as usize].gpu as usize;
        let pos = self.gpu_queues[gpu]
            .iter()
            .position(|&x| x == slot)
            .expect("queued request is on its gpu queue");
        self.gpu_queues[gpu].remove(pos);
        self.queued_count -= 1;
        let st = &mut self.reqs[slot as usize];
        st.status = Status::Abandoned;
        let base_s = st.base_s;
        let waited = now - st.arrival_s;
        self.queued_work_s[gpu] = (self.queued_work_s[gpu] - base_s).max(0.0);
        self.in_system -= 1;
        self.abandoned += 1;
        self.abandoned_wait_s += waited;
        self.abandons_c.inc();
        if let Some(fl) = self.flight.as_mut() {
            fl.on_abandon(now, gpu, waited);
        }
        self.free_slot(slot);
    }
}

/// Runs a scenario to completion (arrivals stop at the horizon or
/// request cap; in-flight work drains) and returns the full result.
/// Metrics stream into `registry` under `serve_*` names.
///
/// # Panics
///
/// Panics if the scenario has no GPUs or references a model the profile
/// has no curve for.
#[must_use]
pub fn simulate(cfg: &ScenarioCfg, profile: &ServiceProfile, registry: &Registry) -> SimResult {
    let (result, _flight) = run(cfg, profile, registry, None, None);
    result
}

/// Like [`simulate`], but arrivals come from an external
/// [`ArrivalSource`] instead of the scenario's seeded generators (whose
/// seeds are then unused). The fleet layer uses this to run one cluster
/// against its deterministically split slice of a global arrival
/// stream. Everything downstream of arrival — routing, scheduling,
/// batching, SLOs, telemetry — behaves exactly as in [`simulate`].
///
/// # Panics
///
/// Panics under the same conditions as [`simulate`], or if the source
/// yields a mix index out of range for the scenario's mix.
#[must_use]
pub fn simulate_stream(
    cfg: &ScenarioCfg,
    profile: &ServiceProfile,
    registry: &Registry,
    source: &mut dyn ArrivalSource,
) -> SimResult {
    let (result, _flight) = run(cfg, profile, registry, None, Some(source));
    result
}

/// Like [`simulate`], with a [`FlightRecorder`] attached: the returned
/// recorder holds the run's per-GPU batch timeline, scheduler instants,
/// and windowed counters, ready for
/// [`FlightRecorder::to_chrome_trace_object`]. Recording never changes
/// the simulated trajectory — the [`SimResult`] is identical to an
/// unrecorded run of the same scenario.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate`].
#[must_use]
pub fn simulate_recorded(
    cfg: &ScenarioCfg,
    profile: &ServiceProfile,
    registry: &Registry,
    flight_cfg: FlightCfg,
) -> (SimResult, FlightRecorder) {
    let (result, flight) =
        run(cfg, profile, registry, Some(FlightRecorder::new(flight_cfg, cfg.gpus)), None);
    (result, flight.expect("recorder threaded through the run"))
}

fn run<'a>(
    cfg: &'a ScenarioCfg,
    profile: &'a ServiceProfile,
    registry: &Registry,
    flight: Option<FlightRecorder>,
    source: Option<&'a mut dyn ArrivalSource>,
) -> (SimResult, Option<FlightRecorder>) {
    assert!(cfg.gpus >= 1, "need at least one GPU");
    assert!(cfg.duration_s > 0.0, "duration must be positive");
    for model in cfg.mix.models() {
        assert!(profile.curve(model).is_some(), "no service curve for {model}");
    }

    // Resolve per-model curves, deadlines, and telemetry handles once;
    // the event loop then never touches the registry's lock or re-scans
    // the mix.
    let per_model: Vec<ModelInfo<'_>> = cfg
        .mix
        .entries()
        .iter()
        .map(|(model, _)| {
            let curve = profile.curve(*model).expect("checked above");
            let labels = [("model", model_short_name(*model))];
            ModelInfo {
                model: *model,
                curve,
                base_s: curve.base_s(),
                draw_w: curve.draw_w,
                slo_delta_s: cfg.slo.slo_s(curve),
                requests_c: registry.counter_with("serve_requests_total", &labels),
                slo_miss_c: registry.counter_with("serve_slo_miss_total", &labels),
                wait_h: registry.histogram_with("serve_wait_s", &labels, &latency_buckets_s()),
                latency_h: registry
                    .histogram_with("serve_latency_s", &labels, &latency_buckets_s()),
                phase_h: cfg.attrib.then(|| {
                    let m = model_short_name(*model);
                    ["queue", "hold", "execute"].map(|phase| {
                        registry.histogram_with(
                            "serve_phase_s",
                            &[("model", m), ("phase", phase)],
                            &latency_buckets_s(),
                        )
                    })
                }),
            }
        })
        .collect();

    let mut sim = Sim {
        cfg,
        queue: EventQueue::new(),
        per_model,
        reqs: Vec::new(),
        free: Vec::new(),
        gpu_queues: vec![VecDeque::new(); cfg.gpus],
        queued_work_s: vec![0.0; cfg.gpus],
        queued_count: 0,
        running: (0..cfg.gpus).map(|_| None).collect(),
        vec_pool: Vec::new(),
        busy_s: vec![0.0; cfg.gpus],
        energy_j: vec![0.0; cfg.gpus],
        model_busy_s: vec![0.0; cfg.mix.entries().len()],
        rr_next: 0,
        arrivals: 0,
        dropped: 0,
        abandoned: 0,
        abandoned_wait_s: 0.0,
        records: Vec::new(),
        stats: ServeStats::new(&cfg.mix, cfg.seed, cfg.exemplar_k, cfg.worst_n, cfg.attrib),
        batch_h: registry
            .histogram("serve_batch_size", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]),
        drops_c: registry.counter("serve_drops_total"),
        abandons_c: registry.counter("serve_abandons_total"),
        mix_rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(1)),
        unit: Uniform::new(0.0, 1.0),
        arrival_gen: ArrivalGen::new(cfg.arrival, cfg.seed),
        arrival_buf: VecDeque::with_capacity(ARRIVAL_BATCH),
        last_gen_t: 0.0,
        source,
        pending_mix: None,
        area_requests_s: 0.0,
        last_event_s: 0.0,
        in_system: 0,
        in_flight_at_horizon: 0,
        horizon_snapped: false,
        flight,
        health: cfg.slo_policy.clone().map(HealthMonitor::new),
    };

    let first = sim.next_arrival();
    if first <= cfg.duration_s {
        sim.queue.schedule(first, Event::Arrival);
    }

    let mut any_events = false;
    while let Some((t, event)) = sim.queue.pop() {
        any_events = true;
        // n(t) is constant between events; accumulate the occupancy
        // integral before the state changes.
        sim.area_requests_s += sim.in_system as f64 * (t - sim.last_event_s);
        if let Some(fl) = sim.flight.as_mut() {
            if t > sim.last_event_s {
                fl.on_occupancy(sim.last_event_s, t, sim.in_system);
            }
        }
        if let Some(hm) = sim.health.as_mut() {
            if t > sim.last_event_s {
                hm.on_span(sim.last_event_s, t, sim.in_system as f64);
            }
        }
        sim.last_event_s = t;
        if !sim.horizon_snapped && t >= cfg.duration_s {
            sim.horizon_snapped = true;
            sim.in_flight_at_horizon = sim.in_system;
        }
        match event {
            Event::Arrival => {
                sim.on_arrival();
                let generated = sim.arrivals;
                let more = cfg.max_requests.is_none_or(|cap| generated < cap);
                if more {
                    let next = sim.next_arrival();
                    if next <= cfg.duration_s {
                        sim.queue.schedule(next, Event::Arrival);
                    }
                }
            }
            Event::Depart { gpu } => sim.on_depart(gpu),
            Event::Timeout { gpu } => sim.try_dispatch(gpu),
            Event::Abandon { slot, gen } => sim.on_abandon(slot, gen),
        }
    }

    // Gauges are instantaneous: setting them once after the loop leaves
    // the same final values as the per-event updates the slow path did.
    if any_events {
        registry.gauge("serve_queue_depth").set(sim.queued_count as f64);
        registry.gauge("serve_in_flight").set(sim.in_system as f64);
    }

    let end_s = sim.last_event_s;
    for (g, busy) in sim.busy_s.iter().enumerate() {
        let gpu_label = g.to_string();
        registry
            .gauge_with("serve_gpu_utilization", &[("gpu", gpu_label.as_str())])
            .set(if end_s > 0.0 { busy / end_s } else { 0.0 });
    }

    // Energy close-out: busy spans were integrated at launch; the idle
    // remainder of each GPU's clock runs at the profile's idle draw.
    // Everything here is gated on the profile actually carrying power
    // figures, so unmetered runs emit no energy metrics at all and their
    // registries (and flight traces) stay byte-identical to before the
    // energy layer existed.
    let energy = profile.has_power().then(|| {
        let idle_w = profile.idle_w;
        let stats = EnergyStats {
            idle_w,
            busy_energy_j: sim.energy_j.clone(),
            model_busy_s: sim.model_busy_s.clone(),
            model_draw_w: sim.per_model.iter().map(|m| m.draw_w).collect(),
        };
        let mut total_j = 0.0;
        for (g, &busy) in sim.busy_s.iter().enumerate() {
            let j = stats.busy_energy_j[g] + (end_s - busy).max(0.0) * idle_w;
            total_j += j;
            let gpu_label = g.to_string();
            registry
                .gauge_with("serve_gpu_energy_wh", &[("gpu", gpu_label.as_str())])
                .set(j / 3600.0);
        }
        registry.gauge("serve_energy_wh").set(total_j / 3600.0);
        registry.gauge("serve_mean_power_w").set(if end_s > 0.0 {
            total_j / (end_s * sim.busy_s.len() as f64)
        } else {
            0.0
        });
        registry.describe("serve_energy_wh", "modeled cluster energy over the run, watt-hours");
        registry
            .describe("serve_gpu_energy_wh", "modeled per-GPU energy over the run, watt-hours");
        registry
            .describe("serve_mean_power_w", "mean modeled board draw per GPU over the run, watts");
        if let Some(fl) = sim.flight.as_mut() {
            fl.enable_power(idle_w);
        }
        stats
    });

    debug_assert_eq!(sim.in_system, 0, "drain left requests in the system");

    sim.stats.latency_sketch.flush();
    for ms in &mut sim.stats.per_model {
        ms.latency_sketch.flush();
        if let Some(ph) = ms.phases.as_mut() {
            ph.flush();
        }
    }
    if let Some(ph) = sim.stats.phases.as_mut() {
        ph.flush();
    }

    let health = sim.health.take().map(|mut hm| {
        hm.finish(end_s);
        let report = HealthReport {
            policy: hm.engine.policy().clone(),
            alerts: hm.engine.events().to_vec(),
            ratchet: hm.ratchet.events().to_vec(),
        };
        // Alert/ratchet transitions become flight-recorder instants and
        // registry counters only now, after the loop: both event vecs are
        // chronological, so the trace stays time-ordered, and the hot
        // loop never touches a counter for the health layer.
        for ev in &report.alerts {
            let fire = matches!(ev.kind, AlertKind::Fire);
            if let Some(fl) = sim.flight.as_mut() {
                fl.on_alert(ev.t_s, ev.rule as u32, fire, ev.long_burn, ev.short_burn);
            }
            registry
                .counter_with("serve_alert_transitions_total", &[("kind", ev.kind.label())])
                .inc();
        }
        for ev in &report.ratchet {
            let fire = matches!(ev.kind, AlertKind::Fire);
            if let Some(fl) = sim.flight.as_mut() {
                fl.on_ratchet(ev.t_s, fire, ev.depth);
            }
            registry
                .counter_with("serve_ratchet_transitions_total", &[("kind", ev.kind.label())])
                .inc();
        }
        if let Some(tta) = report.time_to_first_alert_s() {
            registry.gauge("serve_time_to_first_alert_s").set(tta);
        }
        registry.describe(
            "serve_alert_transitions_total",
            "burn-rate alert fire/clear transitions over the run",
        );
        registry.describe(
            "serve_ratchet_transitions_total",
            "ratcheting-queue-depth anomaly fire/clear transitions",
        );
        registry.describe(
            "serve_time_to_first_alert_s",
            "sim time of the first burn-rate alert fire, if any",
        );
        report
    });
    if cfg.attrib {
        registry.describe(
            "serve_phase_s",
            "per-request latency attribution by phase (queue, hold, execute)",
        );
    }

    assert!(
        sim.records.len() <= u32::MAX as usize,
        "full-records mode caps at u32::MAX completions; use streaming mode"
    );
    let mut arrival_order: Vec<u32> = (0..sim.records.len() as u32).collect();
    arrival_order.sort_by_key(|&i| sim.records[i as usize].id);

    let result = SimResult {
        records: sim.records,
        stats: sim.stats,
        arrivals: sim.arrivals,
        dropped: sim.dropped,
        abandoned: sim.abandoned,
        in_flight_at_horizon: sim.in_flight_at_horizon,
        horizon_s: cfg.duration_s,
        end_s,
        area_requests_s: sim.area_requests_s,
        abandoned_wait_s: sim.abandoned_wait_s,
        busy_s: sim.busy_s,
        health,
        energy,
        arrival_order,
    };
    (result, sim.flight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::CLUSTER_LANE;

    fn constant_profile(service_s: f64) -> ServiceProfile {
        ServiceProfile::new(vec![ServiceCurve::constant(ModelId::StableDiffusion, service_s)])
    }

    /// A curve with strong batching benefit: batch of 16 costs only 2×
    /// batch 1 (decode-like amortization).
    fn batching_profile(service_s: f64) -> ServiceProfile {
        ServiceProfile::new(vec![ServiceCurve::new(
            ModelId::StableDiffusion,
            vec![(1, service_s), (4, 1.3 * service_s), (16, 2.0 * service_s)],
        )])
    }

    fn scenario(scheduler: SchedulerKind, rate: f64, duration_s: f64) -> ScenarioCfg {
        ScenarioCfg::new(
            2,
            RequestMix::single(ModelId::StableDiffusion),
            ArrivalProcess::poisson(rate),
            scheduler,
            SloSpec::FixedS(2.0),
            duration_s,
            7,
        )
    }

    #[test]
    fn conserves_requests() {
        let cfg = scenario(SchedulerKind::Fifo, 3.0, 200.0);
        let r = simulate(&cfg, &constant_profile(0.5), &Registry::new());
        assert!(r.arrivals > 100);
        assert_eq!(
            r.arrivals,
            r.records.len() as u64 + r.dropped + r.abandoned,
            "every arrival must complete, drop, or abandon"
        );
        let done_by_horizon =
            r.records.iter().filter(|rec| rec.finish_s < r.horizon_s).count() as u64;
        assert_eq!(r.arrivals, done_by_horizon + r.in_flight_at_horizon);
    }

    #[test]
    fn littles_law_area_matches_sojourns() {
        let cfg = scenario(SchedulerKind::Fifo, 3.0, 300.0);
        let r = simulate(&cfg, &constant_profile(0.4), &Registry::new());
        let sojourn: f64 = r.records.iter().map(RequestRecord::latency_s).sum();
        let rel = (r.area_requests_s - sojourn).abs() / sojourn;
        assert!(rel < 1e-9, "area {} vs sojourn {sojourn}", r.area_requests_s);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = scenario(SchedulerKind::Dynamic { max_batch: 8 }, 4.0, 100.0);
        let a = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        let b = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        assert_eq!(a, b);
        let other = ScenarioCfg { seed: 8, ..cfg };
        let c = simulate(&other, &batching_profile(0.5), &Registry::new());
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn streaming_mode_matches_full_records_aggregates() {
        // Same seed, records on vs off: the trajectory must be identical,
        // so every streaming aggregate must equal the exact one.
        let cfg = scenario(SchedulerKind::Dynamic { max_batch: 8 }, 4.0, 200.0);
        let full = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        let streaming_cfg = ScenarioCfg { full_records: false, ..cfg };
        let streaming = simulate(&streaming_cfg, &batching_profile(0.5), &Registry::new());
        assert!(streaming.records.is_empty());
        assert_eq!(streaming.stats, full.stats);
        assert_eq!(streaming.arrivals, full.arrivals);
        assert_eq!(streaming.area_requests_s, full.area_requests_s);
        assert_eq!(streaming.busy_s, full.busy_s);
        assert_eq!(full.stats.completed, full.records.len() as u64);
        let on_time = full.records.iter().filter(|r| r.on_time()).count() as u64;
        assert_eq!(full.stats.on_time, on_time);
        let lat: f64 = full.records.iter().map(RequestRecord::latency_s).sum();
        assert!((full.stats.latency_sum_s - lat).abs() < 1e-9);
    }

    #[test]
    fn dynamic_batching_beats_fifo_under_load() {
        // Offered utilization ~1.2 on a batch-1 basis: FIFO saturates,
        // dynamic batching rides the amortization curve.
        let profile = batching_profile(0.5);
        let fifo = simulate(&scenario(SchedulerKind::Fifo, 5.0, 300.0), &profile, &Registry::new());
        let dynamic = simulate(
            &scenario(SchedulerKind::Dynamic { max_batch: 16 }, 5.0, 300.0),
            &profile,
            &Registry::new(),
        );
        assert!(
            dynamic.goodput_rps() > 1.5 * fifo.goodput_rps(),
            "dynamic {} vs fifo {}",
            dynamic.goodput_rps(),
            fifo.goodput_rps()
        );
    }

    #[test]
    fn pods_beat_dynamic_when_factor_high() {
        let mut profile = batching_profile(0.5);
        profile.curves[0].pod_factor = 1.5;
        let dynamic = simulate(
            &scenario(SchedulerKind::Dynamic { max_batch: 8 }, 6.0, 300.0),
            &profile,
            &Registry::new(),
        );
        let pods = simulate(
            &scenario(SchedulerKind::Pods { max_batch: 8 }, 6.0, 300.0),
            &profile,
            &Registry::new(),
        );
        assert!(
            pods.throughput_rps() >= dynamic.throughput_rps(),
            "pods {} vs dynamic {}",
            pods.throughput_rps(),
            dynamic.throughput_rps()
        );
        assert!(pods.records.iter().all(|r| r.latency_s() > 0.0));
    }

    #[test]
    fn static_batching_waits_then_launches() {
        // One slow trickle: static must launch partial batches after the
        // timeout instead of waiting forever.
        let cfg = scenario(SchedulerKind::Static { batch: 8, wait_s: 0.25 }, 0.5, 60.0);
        let r = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        assert!(!r.records.is_empty());
        assert_eq!(r.arrivals, r.records.len() as u64);
        // Light traffic: batches stay small, waits bounded by the timer
        // plus in-service time ahead of the request.
        for rec in &r.records {
            assert!(rec.batch < 8, "unexpected full batch in light traffic");
        }
    }

    #[test]
    fn abandonment_and_admission_control_count_drops() {
        let mut cfg = scenario(SchedulerKind::Fifo, 8.0, 60.0);
        cfg.abandon_after_s = Some(1.0);
        cfg.max_queue = Some(10);
        // Overloaded single GPU.
        cfg.gpus = 1;
        let reg = Registry::new();
        let r = simulate(&cfg, &constant_profile(0.5), &reg);
        assert!(r.dropped > 0, "admission control never fired");
        assert!(r.abandoned > 0, "abandonment never fired");
        assert_eq!(r.arrivals, r.records.len() as u64 + r.dropped + r.abandoned);
        assert_eq!(reg.counter("serve_drops_total").get(), r.dropped);
        assert_eq!(reg.counter("serve_abandons_total").get(), r.abandoned);
    }

    #[test]
    fn slot_pool_recycles_under_churn() {
        // Heavy abandonment churn: the pool must stay bounded by peak
        // concurrency, and stale abandon timers must never fire on
        // recycled slots (conservation would break if they did).
        let mut cfg = scenario(SchedulerKind::Fifo, 12.0, 120.0);
        cfg.abandon_after_s = Some(0.4);
        cfg.gpus = 1;
        cfg.full_records = false;
        let r = simulate(&cfg, &constant_profile(0.5), &Registry::new());
        assert!(r.abandoned > 100, "churn scenario must abandon plenty");
        assert_eq!(r.arrivals, r.stats.completed + r.dropped + r.abandoned);
    }

    #[test]
    fn depth_at_arrival_counts_outstanding_requests() {
        // Deterministic hand check: single GPU, service 1.0, arrivals
        // faster than service. The k-th arrival sees all earlier
        // unfinished requests plus itself.
        let cfg = ScenarioCfg {
            gpus: 1,
            ..scenario(SchedulerKind::Fifo, 4.0, 50.0)
        };
        let r = simulate(&cfg, &constant_profile(1.0), &Registry::new());
        for rec in r.records_by_arrival() {
            let outstanding = r
                .records
                .iter()
                .filter(|o| o.arrival_s < rec.arrival_s && o.finish_s > rec.arrival_s)
                .count() as u64;
            assert_eq!(
                rec.depth_at_arrival,
                outstanding + 1,
                "request {} depth mismatch",
                rec.id
            );
        }
    }

    #[test]
    fn records_by_arrival_is_sorted_and_stable() {
        let cfg = scenario(SchedulerKind::Dynamic { max_batch: 8 }, 4.0, 100.0);
        let r = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        let by_arrival = r.records_by_arrival();
        assert_eq!(by_arrival.len(), r.records.len());
        assert!(by_arrival.windows(2).all(|w| w[0].id < w[1].id));
        // Second call returns the same view (cached order, no re-sort).
        assert_eq!(
            r.records_by_arrival().iter().map(|x| x.id).collect::<Vec<_>>(),
            by_arrival.iter().map(|x| x.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn routers_spread_load() {
        for router in [RouterKind::RoundRobin, RouterKind::LeastWork] {
            let mut cfg = scenario(SchedulerKind::Fifo, 3.0, 200.0);
            cfg.gpus = 4;
            cfg.router = router;
            let r = simulate(&cfg, &constant_profile(0.5), &Registry::new());
            let total: f64 = r.busy_s.iter().sum();
            for (g, b) in r.busy_s.iter().enumerate() {
                assert!(
                    *b > 0.1 * total / 4.0,
                    "{router:?}: gpu {g} starved ({b} of {total})"
                );
            }
        }
    }

    #[test]
    fn affinity_router_pools_same_model_requests() {
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 1.0),
            (ModelId::Parti, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.4),
            ServiceCurve::constant(ModelId::Parti, 0.4),
        ]);
        let cfg = ScenarioCfg {
            router: RouterKind::ModelAffinity,
            ..ScenarioCfg::new(
                4,
                mix,
                ArrivalProcess::poisson(4.0),
                SchedulerKind::Fifo,
                SloSpec::None,
                100.0,
                3,
            )
        };
        let r = simulate(&cfg, &profile, &Registry::new());
        // Even GPUs serve SD, odd GPUs serve Parti — never mixed.
        for rec in &r.records {
            let expected_parity = usize::from(rec.model == ModelId::Parti);
            assert_eq!(rec.gpu % 2, expected_parity, "{:?} on gpu {}", rec.model, rec.gpu);
        }
    }

    #[test]
    fn slo_service_multiple_scales_per_model() {
        let curve = ServiceCurve::constant(ModelId::Parti, 2.0);
        assert_eq!(SloSpec::ServiceMultiple(4.0).slo_s(&curve), 8.0);
        assert_eq!(SloSpec::FixedS(1.5).slo_s(&curve), 1.5);
        assert_eq!(SloSpec::None.slo_s(&curve), f64::INFINITY);
    }

    #[test]
    fn max_requests_caps_arrivals() {
        let mut cfg = scenario(SchedulerKind::Fifo, 10.0, 1e9);
        cfg.max_requests = Some(50);
        let r = simulate(&cfg, &constant_profile(0.1), &Registry::new());
        assert_eq!(r.arrivals, 50);
        assert_eq!(r.records.len(), 50);
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(RouterKind::parse("round-robin").unwrap(), RouterKind::RoundRobin);
        assert_eq!(RouterKind::parse("AFFINITY").unwrap(), RouterKind::ModelAffinity);
        assert!(RouterKind::parse("hash").is_err());
        assert_eq!(
            SchedulerKind::parse("dynamic", 8).unwrap(),
            SchedulerKind::Dynamic { max_batch: 8 }
        );
        assert_eq!(SchedulerKind::parse("fifo", 8).unwrap().name(), "fifo");
        assert!(SchedulerKind::parse("edf", 8).is_err());
    }

    /// The conservation invariant, bitwise: for every completed request
    /// `(admission + queue) + hold + execute == latency` with zero
    /// float slack, across schedulers with very different phase mixes.
    #[test]
    fn phases_conserve_latency_bitwise() {
        for scheduler in [
            SchedulerKind::Fifo,
            SchedulerKind::Static { batch: 8, wait_s: 0.25 },
            SchedulerKind::Dynamic { max_batch: 16 },
        ] {
            let cfg = ScenarioCfg { attrib: true, ..scenario(scheduler, 5.0, 120.0) };
            let r = simulate(&cfg, &batching_profile(0.5), &Registry::new());
            assert!(r.records.len() > 100, "{scheduler:?}: thin run");
            for rec in r.records.iter().chain(r.stats.exemplars.worst()) {
                assert!(
                    rec.queue_s >= 0.0 && rec.hold_s >= 0.0 && rec.execute_s >= 0.0,
                    "request {}: negative phase ({}, {}, {})",
                    rec.id,
                    rec.queue_s,
                    rec.hold_s,
                    rec.execute_s
                );
                let sum = ((rec.admission_s() + rec.queue_s) + rec.hold_s) + rec.execute_s;
                assert!(
                    sum == rec.latency_s(),
                    "request {}: phases sum {} != latency {} ({scheduler:?})",
                    rec.id,
                    sum,
                    rec.latency_s()
                );
            }
            // The exact phase sums therefore telescope into the latency sum.
            let ph = r.stats.phases.as_ref().expect("attrib on");
            let total = ph.queue_sum_s + ph.hold_sum_s + ph.execute_sum_s;
            assert!(
                (total - r.stats.latency_sum_s).abs() < 1e-6 * r.stats.latency_sum_s.max(1.0),
                "{scheduler:?}: phase total {total} vs latency sum {}",
                r.stats.latency_sum_s
            );
        }
    }

    /// Instrumentation must be read-only: turning attribution and the
    /// health engine on cannot change the simulated sample path.
    #[test]
    fn attrib_and_health_do_not_change_trajectory() {
        let base = scenario(SchedulerKind::Dynamic { max_batch: 8 }, 5.0, 150.0);
        let plain = simulate(&base, &batching_profile(0.5), &Registry::new());
        let instrumented_cfg = base.clone().with_health(0.95);
        assert!(instrumented_cfg.attrib && instrumented_cfg.slo_policy.is_some());
        let instrumented = simulate(&instrumented_cfg, &batching_profile(0.5), &Registry::new());
        assert_eq!(plain.records, instrumented.records);
        assert_eq!(plain.busy_s, instrumented.busy_s);
        assert_eq!(plain.arrivals, instrumented.arrivals);
        assert_eq!(plain.area_requests_s, instrumented.area_requests_s);
        assert_eq!(plain.stats.latency_sum_s, instrumented.stats.latency_sum_s);
        assert!(plain.health.is_none());
        assert!(instrumented.health.is_some());
    }

    /// Streaming phase quantiles respect the sketch's documented rank
    /// bound against the exact per-phase order statistics.
    #[test]
    fn phase_sketch_p99_respects_rank_bound() {
        let cfg = ScenarioCfg {
            attrib: true,
            ..scenario(SchedulerKind::Dynamic { max_batch: 16 }, 20.0, 300.0)
        };
        let r = simulate(&cfg, &batching_profile(0.2), &Registry::new());
        assert!(r.records.len() > 2_000, "want a dense run, got {}", r.records.len());
        let ph = r.stats.phases.as_ref().expect("attrib on");
        for (name, sketch, exact) in [
            ("queue", &ph.queue, r.records.iter().map(|x| x.queue_s).collect::<Vec<_>>()),
            ("hold", &ph.hold, r.records.iter().map(|x| x.hold_s).collect::<Vec<_>>()),
            ("execute", &ph.execute, r.records.iter().map(|x| x.execute_s).collect::<Vec<_>>()),
        ] {
            let mut exact = exact;
            exact.sort_by(f64::total_cmp);
            let n = exact.len();
            let err = sketch.rank_error_ranks().ceil() as usize + 1;
            let got = sketch.quantile(0.99).expect("non-empty phase sketch");
            let rank = (0.99 * (n - 1) as f64).round() as usize;
            let lo = exact[rank.saturating_sub(err)];
            let hi = exact[(rank + err).min(n - 1)];
            assert!(
                (lo..=hi).contains(&got),
                "{name} p99 {got} outside [{lo}, {hi}] (±{err} ranks of {n})"
            );
        }
    }

    /// Phase semantics: FIFO never idles with a non-empty queue, so its
    /// wait is almost all queue; static batching's wait timer withholds
    /// launches on an idle GPU, so it accrues genuine hold time.
    #[test]
    fn hold_phase_separates_static_from_fifo() {
        let profile = batching_profile(0.5);
        let fifo_cfg = ScenarioCfg { attrib: true, ..scenario(SchedulerKind::Fifo, 3.0, 200.0) };
        let fifo = simulate(&fifo_cfg, &profile, &Registry::new());
        let fifo_ph = fifo.stats.phases.as_ref().unwrap();
        assert!(
            fifo_ph.hold_sum_s <= 1e-9 * fifo_ph.queue_sum_s.max(1.0),
            "fifo accrued hold time: {} (queue {})",
            fifo_ph.hold_sum_s,
            fifo_ph.queue_sum_s
        );

        let static_cfg = ScenarioCfg {
            attrib: true,
            ..scenario(SchedulerKind::Static { batch: 8, wait_s: 0.25 }, 3.0, 200.0)
        };
        let st = simulate(&static_cfg, &profile, &Registry::new());
        let st_ph = st.stats.phases.as_ref().unwrap();
        assert!(
            st_ph.hold_sum_s > 0.1 * st_ph.queue_sum_s.max(1e-9),
            "static batching shows no hold time: {} (queue {})",
            st_ph.hold_sum_s,
            st_ph.queue_sum_s
        );
    }

    /// Energy integration: busy spans at the model draw, the idle
    /// remainder at idle draw, surfaced through the result accessors and
    /// the `serve_energy_*` gauges — and fully absent for unmetered
    /// profiles.
    #[test]
    fn energy_integrates_busy_at_draw_and_idle_at_idle() {
        let idle_w = 60.0;
        let draw_w = 310.0;
        let metered = ServiceProfile::new(vec![ServiceCurve::new(
            ModelId::StableDiffusion,
            vec![(1, 0.5), (4, 1.3 * 0.5), (16, 2.0 * 0.5)],
        )
        .with_draw_w(draw_w)])
        .with_idle_w(idle_w);
        let cfg = scenario(SchedulerKind::Dynamic { max_batch: 8 }, 4.0, 100.0);
        let reg = Registry::new();
        let r = simulate(&cfg, &metered, &reg);
        let e = r.energy.as_ref().expect("metered profile");
        assert_eq!(e.idle_w, idle_w);
        // Busy-span energy is exactly busy seconds × the single draw.
        for (g, &busy) in r.busy_s.iter().enumerate() {
            assert!(
                (e.busy_energy_j[g] - busy * draw_w).abs() < 1e-6,
                "gpu {g}: {} vs {}",
                e.busy_energy_j[g],
                busy * draw_w
            );
        }
        // Model busy seconds fold back to the per-GPU busy total.
        let model_busy: f64 = e.model_busy_s.iter().sum();
        let busy: f64 = r.busy_s.iter().sum();
        assert!((model_busy - busy).abs() < 1e-9);
        // Totals: per-GPU accessors sum to the cluster total, which the
        // gauges mirror in watt-hours.
        let total_j = r.total_energy_j().expect("metered");
        let by_gpu: f64 =
            (0..r.busy_s.len()).map(|g| r.gpu_energy_j(g).unwrap()).sum();
        assert_eq!(total_j, by_gpu);
        let expect_j = busy * draw_w + (2.0 * r.end_s - busy) * idle_w;
        assert!((total_j - expect_j).abs() < 1e-6 * expect_j, "{total_j} vs {expect_j}");
        assert!((reg.gauge("serve_energy_wh").get() - total_j / 3600.0).abs() < 1e-9);
        let mean_w = r.mean_power_w().expect("metered");
        assert!(mean_w > idle_w && mean_w < draw_w, "mean draw {mean_w}");
        assert_eq!(reg.gauge("serve_mean_power_w").get(), mean_w);

        // Unmetered profile: no energy stats, no energy gauges.
        let reg2 = Registry::new();
        let plain = simulate(&cfg, &batching_profile(0.5), &reg2);
        assert!(plain.energy.is_none());
        assert!(plain.total_energy_wh().is_none());
        assert!(!reg2.render_prometheus().contains("serve_energy_wh"));
    }

    /// The burn-rate engine fires under sustained overload and stays
    /// quiet on a well-provisioned cluster; the ratchet detector flags
    /// the unbounded FIFO queue collapse.
    #[test]
    fn health_engine_fires_under_overload_only() {
        // Overload: 1 GPU at capacity 2 req/s offered 8 req/s — latency
        // grows without bound, misses saturate, the queue ratchets.
        let overload_cfg = ScenarioCfg {
            gpus: 1,
            ..scenario(SchedulerKind::Fifo, 8.0, 100.0)
        }
        .with_health(0.95);
        let overload = simulate(&overload_cfg, &constant_profile(0.5), &Registry::new());
        let health = overload.health.as_ref().expect("policy set");
        let tta = health.time_to_first_alert_s().expect("overload must alert");
        assert!(tta > 0.0 && tta < 100.0, "tta {tta}");
        assert!(matches!(health.alerts[0].kind, AlertKind::Fire));
        let rta = health.time_to_first_ratchet_s().expect("collapse must ratchet");
        assert!(rta > 0.0, "ratchet at {rta}");
        assert!(matches!(health.ratchet[0].kind, AlertKind::Fire));

        // Provisioned: same traffic shape, 4x capacity — no alerts.
        let quiet_cfg = ScenarioCfg {
            gpus: 4,
            ..scenario(SchedulerKind::Fifo, 2.0, 100.0)
        }
        .with_health(0.95);
        let quiet = simulate(&quiet_cfg, &constant_profile(0.5), &Registry::new());
        let health = quiet.health.as_ref().expect("policy set");
        assert!(health.alerts.is_empty(), "spurious alerts: {:?}", health.alerts);
        assert!(health.time_to_first_alert_s().is_none());
        assert!(health.ratchet.is_empty(), "spurious ratchet: {:?}", health.ratchet);
    }

    /// Health transitions surface as flight-recorder instants and
    /// registry counters, but only when the layer is on.
    #[test]
    fn health_transitions_reach_flight_and_registry() {
        let cfg = ScenarioCfg {
            gpus: 1,
            ..scenario(SchedulerKind::Fifo, 8.0, 100.0)
        }
        .with_health(0.95);
        let reg = Registry::new();
        let (r, fl) = simulate_recorded(&cfg, &constant_profile(0.5), &reg, FlightCfg::default());
        let health = r.health.as_ref().expect("policy set");
        let fired: Vec<_> = fl
            .instants
            .iter()
            .filter(|e| matches!(e.kind, crate::flight::SchedKind::Alert { .. }))
            .collect();
        assert_eq!(fired.len(), health.alerts.len());
        assert!(fired.iter().all(|e| e.gpu == CLUSTER_LANE));
        let ratchets = fl
            .instants
            .iter()
            .filter(|e| matches!(e.kind, crate::flight::SchedKind::Ratchet { .. }))
            .count();
        assert_eq!(ratchets, health.ratchet.len());
        let fires = health
            .alerts
            .iter()
            .filter(|a| matches!(a.kind, AlertKind::Fire))
            .count() as u64;
        assert_eq!(
            reg.counter_with("serve_alert_transitions_total", &[("kind", "fire")]).get(),
            fires
        );
        assert_eq!(
            reg.gauge("serve_time_to_first_alert_s").get(),
            health.time_to_first_alert_s().unwrap()
        );

        // Without the layer nothing is emitted, keeping default traces
        // byte-stable.
        let plain_cfg = ScenarioCfg { gpus: 1, ..scenario(SchedulerKind::Fifo, 8.0, 100.0) };
        let (_, fl) =
            simulate_recorded(&plain_cfg, &constant_profile(0.5), &Registry::new(), FlightCfg::default());
        assert!(fl.instants.iter().all(|e| !matches!(
            e.kind,
            crate::flight::SchedKind::Alert { .. } | crate::flight::SchedKind::Ratchet { .. }
        )));
    }
}
