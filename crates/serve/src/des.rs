//! The discrete-event kernel: a virtual clock and a typed event queue.
//!
//! Everything in `mmg-serve` advances on this queue — there is no wall
//! clock anywhere in the simulator. Determinism comes from two rules:
//!
//! 1. Events pop in `(time, insertion sequence)` order, so two events
//!    scheduled for the same instant resolve in the order they were
//!    scheduled, independent of queue internals.
//! 2. Time is `f64` seconds compared with [`f64::total_cmp`], so the
//!    ordering is total even in the presence of rounding.
//!
//! Two interchangeable implementations share that contract:
//!
//! - [`CalendarEventQueue`] — a Brown-style calendar queue with O(1)
//!   amortized `schedule`/`pop`. Events hash into `floor(t / width)`
//!   buckets; the pop cursor walks bucket "days", resizing the calendar
//!   (bucket count and width) as the population doubles or collapses.
//!   This is the default: the serving fast path pushes tens of millions
//!   of events through it.
//! - [`HeapEventQueue`] — the original `BinaryHeap` kernel, kept as the
//!   property-test oracle and selectable with the `heap-queue` cargo
//!   feature.
//!
//! [`EventQueue`] aliases whichever implementation the feature set
//! picks; both expose the identical API and — by property test
//! (`tests/proptest_queue.rs`) — the identical event-for-event pop
//! sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    time_s: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Scheduled<E> {
    /// Earlier time (then earlier sequence) sorts *greater*, so the
    /// max-heap pops the earliest event first.
    fn cmp_key(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_key(other)
    }
}

/// The queue implementation used by the simulator: the calendar queue by
/// default, or the binary heap when the `heap-queue` feature is on.
#[cfg(not(feature = "heap-queue"))]
pub type EventQueue<E> = CalendarEventQueue<E>;

/// The queue implementation used by the simulator: the calendar queue by
/// default, or the binary heap when the `heap-queue` feature is on.
#[cfg(feature = "heap-queue")]
pub type EventQueue<E> = HeapEventQueue<E>;

// ---------------------------------------------------------------------------
// Binary-heap kernel (the oracle)
// ---------------------------------------------------------------------------

/// A deterministic event queue with a virtual clock, backed by a binary
/// heap (O(log n) per operation).
///
/// The clock only moves forward, to the timestamp of the event most
/// recently popped. Scheduling into the past is a logic error and
/// panics.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now_s: f64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        HeapEventQueue::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), seq: 0, now_s: 0.0 }
    }

    /// Current virtual time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Schedules `event` at absolute virtual time `at_s`.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is NaN or earlier than the current clock.
    pub fn schedule(&mut self, at_s: f64, event: E) {
        assert!(!at_s.is_nan(), "cannot schedule an event at NaN");
        assert!(
            at_s >= self.now_s,
            "cannot schedule into the past: {at_s} < {}",
            self.now_s
        );
        self.heap.push(Scheduled { time_s: at_s, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| {
            self.now_s = s.time_s;
            (s.time_s, s.event)
        })
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time_s(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_s)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Calendar-queue kernel (the fast path)
// ---------------------------------------------------------------------------

/// Smallest calendar size; also the initial size.
const MIN_BUCKETS: usize = 16;

#[derive(Debug)]
struct CalEntry<E> {
    /// Virtual bucket `floor(time_s / width)` under the calendar's
    /// *current* width — recomputed on every resize, and compared against
    /// the pop cursor instead of re-deriving it from floats so cursor and
    /// entries can never disagree about which "day" an event belongs to.
    vb: u64,
    time_s: f64,
    seq: u64,
    event: E,
}

impl<E> CalEntry<E> {
    /// Ascending event order: earlier time, then earlier sequence.
    fn before(&self, other: &Self) -> bool {
        self.time_s
            .total_cmp(&other.time_s)
            .then(self.seq.cmp(&other.seq))
            .is_lt()
    }
}

/// A deterministic event queue with a virtual clock, backed by a
/// calendar queue (O(1) amortized `schedule`/`pop`).
///
/// Pop order is exactly `(time, insertion sequence)` — byte-for-byte the
/// same sequence as [`HeapEventQueue`] — which the property suite in
/// `tests/proptest_queue.rs` checks against the heap oracle under random
/// schedules.
///
/// The clock only moves forward, to the timestamp of the event most
/// recently popped. Scheduling into the past is a logic error and
/// panics.
#[derive(Debug)]
pub struct CalendarEventQueue<E> {
    /// `buckets[vb % nbuckets]`, each sorted *descending* by
    /// `(time, seq)` so the next event to pop is a cheap `Vec::pop` off
    /// the back.
    buckets: Vec<Vec<CalEntry<E>>>,
    /// `nbuckets - 1`; the bucket count is always a power of two.
    mask: u64,
    /// Seconds per bucket.
    width: f64,
    /// The virtual bucket the pop cursor is currently serving. Invariant:
    /// no pending entry has `vb < cur_vb`.
    cur_vb: u64,
    len: usize,
    seq: u64,
    now_s: f64,
}

impl<E> Default for CalendarEventQueue<E> {
    fn default() -> Self {
        CalendarEventQueue::new()
    }
}

impl<E> CalendarEventQueue<E> {
    /// An empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        CalendarEventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            width: 1.0,
            cur_vb: 0,
            len: 0,
            seq: 0,
            now_s: 0.0,
        }
    }

    /// Current virtual time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    fn vb_of(&self, t: f64) -> u64 {
        // f64-to-u64 `as` saturates, so +inf lands in the last virtual
        // bucket instead of wrapping.
        (t / self.width) as u64
    }

    /// Schedules `event` at absolute virtual time `at_s`.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is NaN or earlier than the current clock.
    pub fn schedule(&mut self, at_s: f64, event: E) {
        assert!(!at_s.is_nan(), "cannot schedule an event at NaN");
        assert!(
            at_s >= self.now_s,
            "cannot schedule into the past: {at_s} < {}",
            self.now_s
        );
        let entry = CalEntry {
            vb: self.vb_of(at_s).max(self.cur_vb),
            time_s: at_s,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        let bucket = &mut self.buckets[(entry.vb & self.mask) as usize];
        // Descending order: the insertion point is after every entry that
        // pops later than the new one.
        let pos = bucket.partition_point(|e| entry.before(e));
        bucket.insert(pos, entry);
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize();
        }
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let mut scanned = 0usize;
        loop {
            let bi = (self.cur_vb & self.mask) as usize;
            let eligible = self
                .buckets[bi]
                .last()
                .is_some_and(|e| e.vb == self.cur_vb);
            if eligible {
                let e = self.buckets[bi].pop().expect("eligible entry present");
                self.len -= 1;
                self.now_s = e.time_s;
                if self.buckets.len() > MIN_BUCKETS && self.len * 8 < self.buckets.len() {
                    self.resize();
                }
                return Some((e.time_s, e.event));
            }
            self.cur_vb = self.cur_vb.saturating_add(1);
            scanned += 1;
            if scanned > nbuckets {
                // A whole calendar year was empty: the next event is far
                // in the future. Jump the cursor straight to it instead
                // of walking day by day.
                self.cur_vb = self.min_entry_vb().expect("len > 0");
                scanned = 0;
            }
        }
    }

    /// Virtual bucket of the globally earliest pending event.
    fn min_entry_vb(&self) -> Option<u64> {
        self.buckets
            .iter()
            .filter_map(|b| b.last())
            .min_by(|a, b| a.time_s.total_cmp(&b.time_s).then(a.seq.cmp(&b.seq)))
            .map(|e| e.vb)
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time_s(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter_map(|b| b.last())
            .min_by(|a, b| a.time_s.total_cmp(&b.time_s).then(a.seq.cmp(&b.seq)))
            .map(|e| e.time_s)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rebuilds the calendar for the current population: the bucket
    /// count tracks `2 * len` (so steady-state buckets hold O(1) events)
    /// and the width tracks the mean inter-event gap (so consecutive
    /// events land in nearby buckets). O(n log n) per resize, amortized
    /// O(1) per event because resizes happen on doublings/halvings.
    fn resize(&mut self) {
        let mut entries: Vec<CalEntry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        debug_assert_eq!(entries.len(), self.len);

        let nbuckets = (2 * self.len.max(1)).next_power_of_two().max(MIN_BUCKETS);
        if nbuckets != self.buckets.len() {
            self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
            self.mask = (nbuckets - 1) as u64;
        }

        if self.len >= 2 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for e in &entries {
                lo = lo.min(e.time_s);
                hi = hi.max(e.time_s);
            }
            let span = hi - lo;
            if span.is_finite() && span > 0.0 {
                // Mean gap; clamped away from zero/denormal so `t/width`
                // stays finite.
                self.width = (span / self.len as f64).max(hi.abs() * 1e-12).max(1e-300);
            }
        }

        // Sort descending once, then append in order: every bucket
        // receives its entries already in descending pop order.
        entries.sort_by(|a, b| {
            b.time_s.total_cmp(&a.time_s).then(b.seq.cmp(&a.seq))
        });
        self.cur_vb = self.vb_of(self.now_s);
        for mut e in entries {
            e.vb = self.vb_of(e.time_s).max(self.cur_vb);
            self.buckets[(e.vb & self.mask) as usize].push(e);
        }
        debug_assert!(
            self.buckets.iter().all(|b| b.windows(2).all(|w| w[1].before(&w[0]))),
            "buckets must stay sorted after resize"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    macro_rules! queue_contract_tests {
        ($name:ident, $Q:ident) => {
            mod $name {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $Q::new();
                    q.schedule(3.0, "c");
                    q.schedule(1.0, "a");
                    q.schedule(2.0, "b");
                    assert_eq!(q.pop(), Some((1.0, "a")));
                    assert_eq!(q.pop(), Some((2.0, "b")));
                    assert_eq!(q.pop(), Some((3.0, "c")));
                    assert_eq!(q.pop(), None);
                }

                #[test]
                fn ties_resolve_in_schedule_order() {
                    let mut q = $Q::new();
                    for i in 0..100 {
                        q.schedule(5.0, i);
                    }
                    for i in 0..100 {
                        assert_eq!(q.pop(), Some((5.0, i)));
                    }
                }

                #[test]
                fn clock_advances_with_pops() {
                    let mut q = $Q::new();
                    q.schedule(1.5, ());
                    q.schedule(4.5, ());
                    assert_eq!(q.now_s(), 0.0);
                    q.pop();
                    assert_eq!(q.now_s(), 1.5);
                    // Scheduling at the current instant is allowed
                    // (same-time events resolve in schedule order).
                    q.schedule(1.5, ());
                    assert_eq!(q.pop(), Some((1.5, ())));
                    q.pop();
                    assert_eq!(q.now_s(), 4.5);
                }

                #[test]
                #[should_panic(expected = "into the past")]
                fn scheduling_into_the_past_panics() {
                    let mut q = $Q::new();
                    q.schedule(2.0, ());
                    q.pop();
                    q.schedule(1.0, ());
                }

                #[test]
                fn peek_does_not_advance() {
                    let mut q = $Q::new();
                    q.schedule(7.0, ());
                    assert_eq!(q.peek_time_s(), Some(7.0));
                    assert_eq!(q.now_s(), 0.0);
                    assert_eq!(q.len(), 1);
                    assert!(!q.is_empty());
                }

                #[test]
                fn interleaved_schedule_pop_stays_sorted() {
                    let mut q = $Q::new();
                    let mut last = f64::NEG_INFINITY;
                    let mut state = 0x1234_5678_u64;
                    let mut popped = 0usize;
                    for round in 0..2_000u64 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let jitter = (state >> 40) as f64 / (1u64 << 24) as f64;
                        q.schedule(q.now_s() + jitter * 10.0, round);
                        if state & 1 == 0 {
                            let (t, _) = q.pop().expect("non-empty");
                            assert!(t >= last, "pop went backwards: {t} after {last}");
                            last = t;
                            popped += 1;
                        }
                    }
                    while let Some((t, _)) = q.pop() {
                        assert!(t >= last);
                        last = t;
                        popped += 1;
                    }
                    assert_eq!(popped, 2_000);
                }
            }
        };
    }

    queue_contract_tests!(calendar, CalendarEventQueue);
    queue_contract_tests!(heap, HeapEventQueue);

    /// A burst far in the future forces the cursor's sparse-jump path.
    #[test]
    fn calendar_jumps_over_empty_years() {
        let mut q = CalendarEventQueue::new();
        q.schedule(0.001, 0u32);
        q.schedule(1.0e9, 1);
        q.schedule(1.0e9, 2);
        q.schedule(2.0e9, 3);
        assert_eq!(q.pop(), Some((0.001, 0)));
        assert_eq!(q.pop(), Some((1.0e9, 1)));
        assert_eq!(q.pop(), Some((1.0e9, 2)));
        assert_eq!(q.pop(), Some((2.0e9, 3)));
        assert!(q.is_empty());
    }

    /// Growth and collapse across resize thresholds preserves order.
    #[test]
    fn calendar_resize_churn_preserves_order() {
        let mut q = CalendarEventQueue::new();
        for i in 0..5_000u64 {
            // Deterministic scatter over [0, 500).
            let t = (i.wrapping_mul(2654435761) % 500_000) as f64 / 1000.0;
            q.schedule(t, i);
        }
        assert_eq!(q.len(), 5_000);
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_seq = 0u64;
        let mut n = 0;
        while let Some((t, seq)) = q.pop() {
            assert!(
                t > prev_t || (t == prev_t && seq > prev_seq) || n == 0,
                "order violated at event {n}: ({t}, {seq}) after ({prev_t}, {prev_seq})"
            );
            prev_t = t;
            prev_seq = seq;
            n += 1;
        }
        assert_eq!(n, 5_000);
    }
}
