//! The discrete-event kernel: a virtual clock and a typed event queue.
//!
//! Everything in `mmg-serve` advances on this queue — there is no wall
//! clock anywhere in the simulator. Determinism comes from two rules:
//!
//! 1. Events pop in `(time, insertion sequence)` order, so two events
//!    scheduled for the same instant resolve in the order they were
//!    scheduled, independent of heap internals.
//! 2. Time is `f64` seconds compared with [`f64::total_cmp`], so the
//!    ordering is total even in the presence of rounding.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    time_s: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Scheduled<E> {
    /// Earlier time (then earlier sequence) sorts *greater*, so the
    /// max-heap pops the earliest event first.
    fn cmp_key(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_key(other)
    }
}

/// A deterministic event queue with a virtual clock.
///
/// The clock only moves forward, to the timestamp of the event most
/// recently popped. Scheduling into the past is a logic error and
/// panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now_s: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now_s: 0.0 }
    }

    /// Current virtual time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Schedules `event` at absolute virtual time `at_s`.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is NaN or earlier than the current clock.
    pub fn schedule(&mut self, at_s: f64, event: E) {
        assert!(!at_s.is_nan(), "cannot schedule an event at NaN");
        assert!(
            at_s >= self.now_s,
            "cannot schedule into the past: {at_s} < {}",
            self.now_s
        );
        self.heap.push(Scheduled { time_s: at_s, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| {
            self.now_s = s.time_s;
            (s.time_s, s.event)
        })
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time_s(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_s)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_resolve_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(1.5, ());
        q.schedule(4.5, ());
        assert_eq!(q.now_s(), 0.0);
        q.pop();
        assert_eq!(q.now_s(), 1.5);
        // Scheduling at the current instant is allowed (same-time events
        // resolve in schedule order).
        q.schedule(1.5, ());
        assert_eq!(q.pop(), Some((1.5, ())));
        q.pop();
        assert_eq!(q.now_s(), 4.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time_s(), Some(7.0));
        assert_eq!(q.now_s(), 0.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
