//! Multi-cluster fleet simulation: regions, autoscaling, $/GPU-hr.
//!
//! The paper's fleet characterization (Fig. 1) is about *capacity*:
//! which SKU serves which model, in which region, at what cost. This
//! module lifts the single-cluster DES of [`crate::cluster`] to a fleet
//! of clusters, each a homogeneous pool of one GPU SKU serving one
//! region's slice of a global arrival stream.
//!
//! # The deterministic arrival split
//!
//! The fleet's global router assigns each region a weight; region `r`
//! receives a Poisson/diurnal stream at `rate · wᵣ/Σw`, phase-shifted
//! by the region's diurnal offset. By the superposition theorem the
//! union of the per-region streams *is* the fleet's global arrival
//! process, and [`GlobalStream`] materializes exactly that union as a
//! deterministic k-way merge (ties broken by region index). Splitting
//! is therefore exact by construction: the per-region streams partition
//! the global reference stream bit-for-bit — counts, timestamps, and
//! model draws — which is what lets the fleet shard its DES by cluster
//! across a worker pool and still merge byte-identical results for any
//! `--jobs`.
//!
//! # Windows, autoscaling, cost
//!
//! The horizon is cut into fixed evaluation windows. Each cluster runs
//! its windows in sequence against its (continuous) region stream; the
//! [`AutoscalerPolicy`] reads each window's utilization and resizes the
//! cluster between windows — scale-ups draw instantly from a billed
//! warm pool and otherwise arrive `lag` windows later; optional spot
//! churn deterministically reclaims capacity. A $/GPU-hr price per
//! cluster rolls provisioned GPU-hours up into $/1k-images.
//!
//! # The fleet fast lane
//!
//! For FIFO scheduling with round-robin routing the per-GPU sample path
//! needs no event queue at all: round-robin preserves arrival order per
//! GPU, FIFO serves one request per batch, so each request's start is
//! `max(arrival, gpu_free)` — a single pass over the arrival stream at
//! tens of millions of requests per second. The fast lane reproduces
//! the general DES sample path exactly (same start/finish arithmetic;
//! an equivalence test pins it) and carries GPU free-times across
//! window boundaries, so it is a *continuous* DES per cluster. Other
//! scheduler/router combinations fall back to [`simulate_stream`] per
//! window (GPUs start each window idle — a documented
//! stationary-within-window approximation).

use mmg_telemetry::{QuantileSketch, Registry, WindowValue, WindowedSeries};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cluster::{simulate_stream, ArrivalSource, RouterKind, ScenarioCfg, SchedulerKind, SloSpec};
use crate::profile::ServiceProfile;
use crate::workload::{ArrivalGen, ArrivalProcess, RequestMix};

/// Rank-error bound of the fleet-level latency sketches. Coarser than
/// the per-cluster [`crate::LATENCY_SKETCH_EPS`]: fleet runs push 10⁸+
/// requests, where a 0.5% rank bound keeps the sketch small and the
/// observe path cheap while still resolving p99 to ~0.5% of rank.
pub const FLEET_SKETCH_EPS: f64 = 0.005;

/// Electricity price used for the report's $-with-energy column,
/// dollars per kilowatt-hour. A module constant rather than a
/// [`ClusterCfg`] field: the paper's cost story is dominated by the
/// GPU-hour price, and a flat industrial-rate figure keeps the energy
/// adjustment visible without threading another knob through every
/// fleet constructor.
pub const PRICE_PER_KWH: f64 = 0.11;

/// Sketch subsampling stride of the fast lane: every `K`-th completion
/// (systematically, phase carried across windows) lands in the latency
/// sketch. Counters — arrivals, completions, deadline hits, busy time —
/// are always exact; only quantiles are estimated, on a deterministic
/// 1-in-8 systematic sample of an ergodic stream (a 100M-request run
/// still puts 12M+ points in the sketch). This keeps the GK fold off
/// the fast lane's critical path. The general lane sketches every
/// completion.
const FAST_LANE_SKETCH_EVERY: u64 = 8;

/// Salt mixed into per-region arrival-time RNG seeds.
const SALT_ARRIVAL: u64 = 0x9E6B_02B1_5C8D_71A3;
/// Salt mixed into per-region model-mix RNG seeds.
const SALT_MIX: u64 = 0x243F_6A88_85A3_08D3;
/// Salt mixed into per-cluster spot-churn RNG seeds.
const SALT_CHURN: u64 = 0xB792_1E3B_70C1_4E85;

/// SplitMix64-style seed derivation: decorrelates per-region streams
/// drawn from one fleet seed.
fn derive_seed(seed: u64, region: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt ^ region.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One cluster of the fleet: a homogeneous pool of one GPU SKU serving
/// one region.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCfg {
    /// Display name (also the `cluster` metric label), e.g. `"us-east"`.
    pub name: String,
    /// GPU SKU key — resolved by the caller to a [`ServiceProfile`]
    /// built from the profiler on that SKU's `DeviceSpec`.
    pub sku: String,
    /// Initially provisioned GPUs.
    pub gpus: usize,
    /// On-demand price per GPU-hour, dollars.
    pub price_per_gpu_hr: f64,
    /// Weight of this region in the global arrival split (share is
    /// `weight / Σ weights`).
    pub weight: f64,
    /// Diurnal phase offset of the region, seconds — regions peak at
    /// different wall-clock offsets.
    pub phase_s: f64,
}

/// Deterministic spot-capacity churn: each window, with probability
/// `prob`, the provider reclaims `frac` of the cluster's GPUs (at least
/// one); reclaimed capacity re-arrives after the policy's scale-up lag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotChurn {
    /// Per-window reclaim probability in `[0, 1]`.
    pub prob: f64,
    /// Fraction of provisioned GPUs reclaimed per event, in `[0, 1]`.
    pub frac: f64,
}

/// How a cluster is resized between evaluation windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AutoscalerPolicy {
    /// Never resize: the cluster keeps its configured GPU count.
    Fixed,
    /// Reactive scaling on measured window utilization: the desired
    /// size is `⌈gpus · util / target_util⌉` clamped to
    /// `[min_gpus, max_gpus]`. Scale-downs apply next window; scale-ups
    /// draw instantly (next window) from a billed warm pool of
    /// `warm_pool` GPUs and otherwise arrive `lag_windows` later (the
    /// warm pool itself replenishes with the same lag).
    Reactive {
        /// Utilization the policy steers toward, in `(0, 1]`.
        target_util: f64,
        /// Lower bound on provisioned GPUs.
        min_gpus: usize,
        /// Upper bound on provisioned GPUs.
        max_gpus: usize,
        /// Cold-start lag, windows, for scale-ups beyond the warm pool.
        lag_windows: usize,
        /// Pre-provisioned (billed, idle) GPUs available for instant
        /// scale-up.
        warm_pool: usize,
        /// Optional spot-capacity churn.
        churn: Option<SpotChurn>,
    },
}

impl AutoscalerPolicy {
    /// Policy name as printed in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AutoscalerPolicy::Fixed => "fixed",
            AutoscalerPolicy::Reactive { churn: None, .. } => "reactive",
            AutoscalerPolicy::Reactive { churn: Some(_), .. } => "reactive+spot",
        }
    }
}

/// A complete fleet scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCfg {
    /// The clusters, one region each.
    pub clusters: Vec<ClusterCfg>,
    /// Request model mix (shared fleet-wide; per-SKU service curves
    /// make the same mix cost different amounts per cluster).
    pub mix: RequestMix,
    /// The *global* arrival process. Its rate is the fleet-wide mean;
    /// each region receives the weight-scaled rate at its own diurnal
    /// phase. Bursty (MMPP) arrivals are not splittable by weight and
    /// are rejected by [`FleetCfg::validate`].
    pub arrival: ArrivalProcess,
    /// Per-GPU scheduler used by every cluster.
    pub scheduler: SchedulerKind,
    /// Request router used within every cluster.
    pub router: RouterKind,
    /// Deadline specification.
    pub slo: SloSpec,
    /// Evaluation-window width, seconds of simulated time.
    pub window_s: f64,
    /// Number of evaluation windows (horizon = `windows · window_s`).
    pub windows: usize,
    /// The autoscaler applied to every cluster.
    pub autoscaler: AutoscalerPolicy,
    /// Fleet seed; per-region streams derive decorrelated seeds from it.
    pub seed: u64,
}

impl FleetCfg {
    /// Total region weight.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.clusters.iter().map(|c| c.weight).sum()
    }

    /// Simulated horizon, seconds.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.window_s * self.windows as f64
    }

    /// The arrival process region `idx` sees: the global process at the
    /// region's weight share of the rate, shifted to the region's
    /// diurnal phase.
    #[must_use]
    pub fn region_process(&self, idx: usize) -> ArrivalProcess {
        let share = self.clusters[idx].weight / self.total_weight();
        self.arrival
            .with_rate(self.arrival.mean_rate_rps() * share)
            .with_phase(self.clusters[idx].phase_s)
    }

    /// Checks the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters.is_empty() {
            return Err("fleet needs at least one cluster".into());
        }
        if matches!(self.arrival, ArrivalProcess::Bursty { .. }) {
            return Err(
                "bursty (MMPP) arrivals carry phase state that a weighted split cannot \
                 partition; use poisson or diurnal for fleet scenarios"
                    .into(),
            );
        }
        for c in &self.clusters {
            if c.gpus == 0 {
                return Err(format!("cluster {} has no GPUs", c.name));
            }
            // Spelled to reject NaN too: a NaN weight or price fails
            // every comparison, so demand the positive/non-negative
            // case explicitly.
            if c.weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("cluster {} needs a positive weight", c.name));
            }
            if c.price_per_gpu_hr.partial_cmp(&0.0) == Some(std::cmp::Ordering::Less)
                || c.price_per_gpu_hr.is_nan()
            {
                return Err(format!("cluster {} has a negative price", c.name));
            }
        }
        if self.window_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || self.windows == 0
        {
            return Err("fleet needs a positive window and at least one window".into());
        }
        Ok(())
    }
}

/// One region's slice of the fleet arrival stream: seeded arrival times
/// plus per-arrival model draws, independent of every other region.
#[derive(Debug)]
pub struct RegionStream {
    gen: ArrivalGen,
    mix: RequestMix,
    mix_rng: StdRng,
    unit: Uniform<f64>,
    t_s: f64,
}

impl RegionStream {
    /// The stream for region `idx` of `fleet`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (and on invalid processes, as
    /// [`ArrivalGen::new`] does).
    #[must_use]
    pub fn new(fleet: &FleetCfg, idx: usize) -> Self {
        let r = idx as u64;
        RegionStream {
            gen: ArrivalGen::new(
                fleet.region_process(idx),
                derive_seed(fleet.seed, r, SALT_ARRIVAL),
            ),
            mix: fleet.mix.clone(),
            mix_rng: StdRng::seed_from_u64(derive_seed(fleet.seed, r, SALT_MIX)),
            unit: Uniform::new(0.0, 1.0),
            t_s: 0.0,
        }
    }

    /// The next `(arrival time, mix index)` of this region. Times are
    /// strictly increasing; the stream never ends (callers clip at
    /// their horizon, so an `Iterator` impl — which must be fused and
    /// fallible — would fit worse than this infallible method).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> (f64, usize) {
        self.t_s = self.gen.next_after(self.t_s);
        // A single-model mix needs no draw — and consuming no RNG here
        // keeps the draw count per arrival identical in every consumer
        // of the stream (fast lane, windowed DES, global merge).
        let mix_idx = if self.mix.entries().len() == 1 {
            0
        } else {
            let u: f64 = self.unit.sample(&mut self.mix_rng);
            self.mix.sample_index(u)
        };
        (self.t_s, mix_idx)
    }
}

/// The fleet's single global arrival stream: the deterministic k-way
/// merge of every region's [`RegionStream`] (earliest time first, ties
/// by region index). This is the single-stream reference the split is
/// tested against — the per-region streams partition it exactly.
#[derive(Debug)]
pub struct GlobalStream {
    regions: Vec<RegionStream>,
    /// Next pending `(t, mix)` per region, lazily advanced.
    heads: Vec<(f64, usize)>,
}

impl GlobalStream {
    /// The merged stream of `fleet`'s regions.
    #[must_use]
    pub fn new(fleet: &FleetCfg) -> Self {
        let mut regions: Vec<RegionStream> =
            (0..fleet.clusters.len()).map(|i| RegionStream::new(fleet, i)).collect();
        let heads = regions.iter_mut().map(RegionStream::next).collect();
        GlobalStream { regions, heads }
    }

    /// The next `(arrival time, region index, mix index)` fleet-wide.
    /// Infinite, like [`RegionStream::next`].
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> (f64, usize, usize) {
        let r = self
            .heads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0))
            .map(|(i, _)| i)
            .expect("fleet has at least one region");
        let (t, mix_idx) = self.heads[r];
        self.heads[r] = self.regions[r].next();
        (t, r, mix_idx)
    }
}

/// Per-window fleet aggregates; summed across clusters via
/// [`WindowValue::merge`] into the fleet-level
/// [`WindowedSeries`] timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetWindow {
    /// Requests that arrived in the window.
    pub arrivals: u64,
    /// Requests completed (dispatch-window attribution: a request
    /// counts in the window it arrived in).
    pub completed: u64,
    /// Completions that met their deadline.
    pub on_time: u64,
    /// GPU busy-seconds credited to the window.
    pub busy_s: f64,
    /// Provisioned GPU-seconds (serving + warm pool) in the window.
    pub gpu_s: f64,
    /// Dollars billed for the window.
    pub cost_usd: f64,
    /// Modeled energy drawn in the window, joules: busy spans at the
    /// per-model draw plus billed-but-idle capacity at the SKU's idle
    /// draw. Stays 0 when the cluster's profile is unmetered.
    pub energy_j: f64,
}

impl WindowValue for FleetWindow {
    fn merge(&mut self, other: &Self) {
        self.arrivals += other.arrivals;
        self.completed += other.completed;
        self.on_time += other.on_time;
        self.busy_s += other.busy_s;
        self.gpu_s += other.gpu_s;
        self.cost_usd += other.cost_usd;
        self.energy_j += other.energy_j;
    }
}

/// Everything one cluster's run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    /// Cluster name (from [`ClusterCfg::name`]).
    pub name: String,
    /// GPU SKU key.
    pub sku: String,
    /// Requests that arrived over the horizon.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completions that met their deadline.
    pub on_time: u64,
    /// Total GPU busy-seconds.
    pub busy_s: f64,
    /// Provisioned GPU-hours billed (serving + warm pool).
    pub gpu_hours: f64,
    /// Dollars billed.
    pub cost_usd: f64,
    /// Total modeled energy over the horizon, watt-hours — busy spans
    /// at the per-model draw plus billed idle capacity (serving gaps
    /// and the warm pool) at the SKU's idle draw. 0 when the cluster's
    /// [`ServiceProfile`] carries no power model.
    pub energy_wh: f64,
    /// Fewest GPUs provisioned in any window.
    pub min_gpus: usize,
    /// Most GPUs provisioned in any window.
    pub max_gpus: usize,
    /// End-to-end latency sketch (rank error [`FLEET_SKETCH_EPS`]).
    /// The fifo+round-robin fast lane fills it from a deterministic
    /// 1-in-8 systematic sample of completions (counters stay exact);
    /// the general lane sketches every completion.
    pub latency: QuantileSketch,
    /// Per-window timeline (base width = the fleet's window).
    pub series: WindowedSeries<FleetWindow>,
}

impl ClusterResult {
    /// Fraction of completions that met their deadline (1 when idle).
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            return 1.0;
        }
        self.on_time as f64 / self.completed as f64
    }

    /// Busy GPU-seconds over provisioned GPU-seconds.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let provisioned_s = self.gpu_hours * 3600.0;
        if provisioned_s <= 0.0 {
            return 0.0;
        }
        self.busy_s / provisioned_s
    }

    /// Dollars per thousand completed requests (images, for the TTI
    /// mixes the fleet serves).
    #[must_use]
    pub fn cost_per_1k(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.cost_usd * 1000.0 / self.completed as f64
    }

    /// Watt-hours per thousand on-time (SLO-good) completions — the
    /// energy price of goodput, 0 when nothing finished on time.
    #[must_use]
    pub fn wh_per_1k_good(&self) -> f64 {
        if self.on_time == 0 {
            return 0.0;
        }
        self.energy_wh * 1000.0 / self.on_time as f64
    }

    /// Dollars billed plus the electricity bill at [`PRICE_PER_KWH`].
    #[must_use]
    pub fn cost_with_energy_usd(&self) -> f64 {
        self.cost_usd + self.energy_wh / 1000.0 * PRICE_PER_KWH
    }
}

/// The whole fleet's results: per-cluster outcomes plus merged totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Per-cluster results, in fleet declaration order.
    pub clusters: Vec<ClusterResult>,
    /// The fleet timeline: every cluster's window series merged.
    pub series: WindowedSeries<FleetWindow>,
}

impl FleetResult {
    /// Assembles the fleet result from per-cluster runs (cheap; merges
    /// the window series in declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty.
    #[must_use]
    pub fn from_clusters(clusters: Vec<ClusterResult>) -> Self {
        assert!(!clusters.is_empty(), "fleet result needs at least one cluster");
        let series = WindowedSeries::merged(clusters.iter().map(|c| &c.series))
            .expect("at least one cluster");
        FleetResult { clusters, series }
    }

    /// Total arrivals fleet-wide.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.clusters.iter().map(|c| c.arrivals).sum()
    }

    /// Total completions fleet-wide.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.clusters.iter().map(|c| c.completed).sum()
    }

    /// Fleet-wide SLO attainment (1 when idle).
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        let completed = self.completed();
        if completed == 0 {
            return 1.0;
        }
        self.clusters.iter().map(|c| c.on_time).sum::<u64>() as f64 / completed as f64
    }

    /// Total dollars billed fleet-wide.
    #[must_use]
    pub fn cost_usd(&self) -> f64 {
        self.clusters.iter().map(|c| c.cost_usd).sum()
    }

    /// Total provisioned GPU-hours fleet-wide.
    #[must_use]
    pub fn gpu_hours(&self) -> f64 {
        self.clusters.iter().map(|c| c.gpu_hours).sum()
    }

    /// Fleet-wide dollars per thousand completed requests.
    #[must_use]
    pub fn cost_per_1k(&self) -> f64 {
        let completed = self.completed();
        if completed == 0 {
            return 0.0;
        }
        self.cost_usd() * 1000.0 / completed as f64
    }

    /// Total modeled energy fleet-wide, watt-hours.
    #[must_use]
    pub fn energy_wh(&self) -> f64 {
        self.clusters.iter().map(|c| c.energy_wh).sum()
    }

    /// Fleet-wide watt-hours per thousand on-time completions.
    #[must_use]
    pub fn wh_per_1k_good(&self) -> f64 {
        let on_time: u64 = self.clusters.iter().map(|c| c.on_time).sum();
        if on_time == 0 {
            return 0.0;
        }
        self.energy_wh() * 1000.0 / on_time as f64
    }

    /// Fleet-wide dollars including electricity at [`PRICE_PER_KWH`].
    #[must_use]
    pub fn cost_with_energy_usd(&self) -> f64 {
        self.cost_usd() + self.energy_wh() / 1000.0 * PRICE_PER_KWH
    }
}

/// A rendered fleet report: the deterministic text the `repro fleet`
/// subcommand prints (and CI byte-compares across `--jobs`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    text: String,
}

impl FleetReport {
    /// Renders `result` for `cfg`.
    #[must_use]
    pub fn new(cfg: &FleetCfg, result: &FleetResult) -> Self {
        let mut out = String::new();
        let gpus_lo: usize = result.clusters.iter().map(|c| c.min_gpus).sum();
        let gpus_hi: usize = result.clusters.iter().map(|c| c.max_gpus).sum();
        let gpus = if gpus_lo == gpus_hi {
            format!("{gpus_lo}")
        } else {
            format!("{gpus_lo}-{gpus_hi}")
        };
        out.push_str(&format!(
            "fleet: {} clusters · {} GPUs · policy {} · scheduler {} · {} windows × {:.0} s\n\n",
            result.clusters.len(),
            gpus,
            cfg.autoscaler.name(),
            cfg.scheduler.name(),
            cfg.windows,
            cfg.window_s,
        ));
        out.push_str(
            "+-----------+-----------+---------+------------+--------+-------+----------+----------+----------+----------+----------+----------+----------+\n\
             | cluster   | sku       |    gpus |   arrivals |   slo% |  util |  gpu-hrs |      $   | $/1k-img |       Wh | Wh/1k-ok | $+energy |  p99 (s) |\n\
             +-----------+-----------+---------+------------+--------+-------+----------+----------+----------+----------+----------+----------+----------+\n",
        );
        for c in &result.clusters {
            let gpus = if c.min_gpus == c.max_gpus {
                format!("{}", c.min_gpus)
            } else {
                format!("{}-{}", c.min_gpus, c.max_gpus)
            };
            let p99 = c.latency.quantile(0.99).unwrap_or(0.0);
            out.push_str(&format!(
                "| {:<9} | {:<9} | {:>7} | {:>10} | {:>5.1}% | {:>5.3} | {:>8.1} | {:>8.2} | {:>8.3} | {:>8.1} | {:>8.3} | {:>8.2} | {:>8.3} |\n",
                c.name,
                c.sku,
                gpus,
                c.arrivals,
                100.0 * c.slo_attainment(),
                c.utilization(),
                c.gpu_hours,
                c.cost_usd,
                c.cost_per_1k(),
                c.energy_wh,
                c.wh_per_1k_good(),
                c.cost_with_energy_usd(),
                p99,
            ));
        }
        out.push_str(
            "+-----------+-----------+---------+------------+--------+-------+----------+----------+----------+----------+----------+----------+----------+\n",
        );
        out.push_str(&format!(
            "fleet totals: {} requests · SLO attainment {:.4} · {:.1} GPU-hrs · ${:.2} · ${:.4}/1k-images · {:.1} Wh ({:.3} Wh/1k-good) · ${:.2} with energy\n",
            result.arrivals(),
            result.slo_attainment(),
            result.gpu_hours(),
            result.cost_usd(),
            result.cost_per_1k(),
            result.energy_wh(),
            result.wh_per_1k_good(),
            result.cost_with_energy_usd(),
        ));

        // Timeline: the merged fleet series, up to 12 rows (the series
        // folds itself coarser when the run has more windows than its
        // cap, so this stays bounded for any horizon).
        out.push_str("\nfleet timeline (merged across clusters):\n");
        out.push_str(
            "+--------------------+------------+------------+--------+-------+----------+\n\
             | window             |   arrivals |  completed |   slo% |  util | W/gpu    |\n\
             +--------------------+------------+------------+--------+-------+----------+\n",
        );
        for (t0, t1, w) in result.series.iter().take(12) {
            let slo = if w.completed == 0 {
                100.0
            } else {
                100.0 * w.on_time as f64 / w.completed as f64
            };
            let util = if w.gpu_s > 0.0 { w.busy_s / w.gpu_s } else { 0.0 };
            // Mean draw per provisioned GPU over the window: J over
            // billed GPU-seconds. 0 for unmetered fleets.
            let watts = if w.gpu_s > 0.0 { w.energy_j / w.gpu_s } else { 0.0 };
            out.push_str(&format!(
                "| [{:>7.0}, {:>7.0}) | {:>10} | {:>10} | {:>5.1}% | {:>5.3} | {:>8.1} |\n",
                t0, t1, w.arrivals, w.completed, slo, util, watts,
            ));
        }
        out.push_str("+--------------------+------------+------------+--------+-------+----------+\n");
        FleetReport { text: out }
    }

    /// The rendered report text.
    #[must_use]
    pub fn render(&self) -> &str {
        &self.text
    }
}

/// Pending capacity change: the window it lands in and the (signed)
/// GPU delta for the serving pool, or a warm-pool refill.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Serve(i64),
    Warm(u64),
}

/// Autoscaler bookkeeping for one cluster.
struct Scaler {
    gpus: usize,
    warm: usize,
    pending: Vec<(usize, Pending)>,
    churn_rng: StdRng,
    unit: Uniform<f64>,
    min_seen: usize,
    max_seen: usize,
}

impl Scaler {
    fn new(fleet: &FleetCfg, idx: usize) -> Self {
        let warm = match fleet.autoscaler {
            AutoscalerPolicy::Reactive { warm_pool, .. } => warm_pool,
            AutoscalerPolicy::Fixed => 0,
        };
        let gpus = fleet.clusters[idx].gpus;
        Scaler {
            gpus,
            warm,
            pending: Vec::new(),
            churn_rng: StdRng::seed_from_u64(derive_seed(
                fleet.seed,
                idx as u64,
                SALT_CHURN,
            )),
            unit: Uniform::new(0.0, 1.0),
            min_seen: gpus,
            max_seen: gpus,
        }
    }

    /// Applies pending capacity changes and spot churn at the start of
    /// window `w`; returns the GPU count to serve the window with.
    fn begin_window(&mut self, policy: &AutoscalerPolicy, w: usize) -> usize {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 == w {
                match self.pending.swap_remove(i).1 {
                    Pending::Serve(d) => {
                        self.gpus = (self.gpus as i64 + d).max(1) as usize;
                    }
                    Pending::Warm(n) => self.warm += n as usize,
                }
            } else {
                i += 1;
            }
        }
        if let AutoscalerPolicy::Reactive { lag_windows, churn: Some(churn), .. } = policy {
            // One draw per window regardless of outcome keeps the churn
            // RNG stream aligned for any capacity trajectory.
            let u: f64 = self.unit.sample(&mut self.churn_rng);
            if u < churn.prob && self.gpus > 1 {
                let lost = ((self.gpus as f64 * churn.frac) as usize).clamp(1, self.gpus - 1);
                self.gpus -= lost;
                // Reclaimed capacity is re-acquired on-demand: it comes
                // back after the cold-start lag.
                self.pending.push((w + 1 + lag_windows, Pending::Serve(lost as i64)));
            }
        }
        self.min_seen = self.min_seen.min(self.gpus);
        self.max_seen = self.max_seen.max(self.gpus);
        self.gpus
    }

    /// Feeds the window's measured utilization to the policy and queues
    /// the resulting capacity changes.
    fn end_window(&mut self, policy: &AutoscalerPolicy, w: usize, util: f64) {
        let AutoscalerPolicy::Reactive {
            target_util,
            min_gpus,
            max_gpus,
            lag_windows,
            ..
        } = *policy
        else {
            return;
        };
        let desired = ((self.gpus as f64 * util / target_util).ceil() as i64)
            .clamp(min_gpus.max(1) as i64, max_gpus as i64);
        // Measure the delta against capacity already committed, so a
        // sustained surge is not re-ordered every window.
        let committed: i64 = self.gpus as i64
            + self
                .pending
                .iter()
                .map(|(_, p)| match p {
                    Pending::Serve(d) => *d,
                    Pending::Warm(_) => 0,
                })
                .sum::<i64>();
        let delta = desired - committed;
        if delta > 0 {
            let from_warm = (delta as usize).min(self.warm);
            if from_warm > 0 {
                self.warm -= from_warm;
                self.pending.push((w + 1, Pending::Serve(from_warm as i64)));
                // The pool replenishes with the same cold-start lag.
                self.pending.push((w + 1 + lag_windows, Pending::Warm(from_warm as u64)));
            }
            let cold = delta - from_warm as i64;
            if cold > 0 {
                self.pending.push((w + 1 + lag_windows.max(1), Pending::Serve(cold)));
            }
        } else if delta < 0 {
            // Scale-downs are immediate (next window); released GPUs
            // simply stop billing.
            self.pending.push((w + 1, Pending::Serve(delta)));
        }
    }
}

/// Per-model constants the fast lane resolves once.
struct FastModel {
    service_s: f64,
    slo_delta_s: f64,
    /// Energy one request costs at the model's modeled draw, joules
    /// (`service_s · draw_w`; 0 for unmetered curves, so the fast
    /// lane's accumulation is branch-free either way).
    energy_j: f64,
}

/// Runs cluster `idx` of `fleet` over the whole horizon against its
/// region's arrival stream, and records summary metrics into
/// `registry` (`fleet_requests_total`, `fleet_completed_total`,
/// `fleet_slo_miss_total`, `fleet_cost_usd` — all labeled by cluster).
///
/// This is the unit of work the fleet experiments shard across the
/// worker pool: one call per cluster, results merged in declaration
/// order, byte-identical for any job count.
///
/// # Panics
///
/// Panics on an invalid fleet config ([`FleetCfg::validate`]) or a
/// profile missing a curve for a mix model.
#[must_use]
pub fn run_cluster(
    fleet: &FleetCfg,
    idx: usize,
    profile: &ServiceProfile,
    registry: &Registry,
) -> ClusterResult {
    if let Err(e) = fleet.validate() {
        panic!("invalid fleet config: {e}");
    }
    let cluster = &fleet.clusters[idx];
    let mut stream = RegionStream::new(fleet, idx);
    let mut scaler = Scaler::new(fleet, idx);
    let mut series: WindowedSeries<FleetWindow> =
        WindowedSeries::new(fleet.window_s, fleet.windows.clamp(2, 256));
    // Large observe buffer: the fold over the tuple summary happens
    // every 4096 observations instead of every 100, which keeps the
    // sketch off the fast lane's critical path (same eps bound).
    let mut latency = QuantileSketch::with_buffer_cap(FLEET_SKETCH_EPS, 4096);

    let fast = fleet.scheduler == SchedulerKind::Fifo && fleet.router == RouterKind::RoundRobin;

    // Fast-lane cross-window state: per-GPU next-free instants survive
    // window boundaries, so the lane is a continuous DES. `lat_phase`
    // carries the systematic-sample phase across windows.
    let mut free_t: Vec<f64> = Vec::new();
    let mut rr_next: usize = 0;
    let mut pending: Option<(f64, usize)> = None;
    let mut lat_phase: u64 = 0;

    let models: Vec<FastModel> = fleet
        .mix
        .entries()
        .iter()
        .map(|(m, _)| {
            let curve = profile.curve(*m).unwrap_or_else(|| panic!("no service curve for {m}"));
            let service_s = curve.batch_s(1);
            FastModel {
                service_s,
                slo_delta_s: fleet.slo.slo_s(curve),
                energy_j: service_s * curve.draw_w,
            }
        })
        .collect();
    // Idle draw charged to billed-but-idle capacity. Zeroed when the
    // profile carries no power model so every energy figure stays
    // exactly 0.0 and unmetered reports are unchanged.
    let idle_w = if profile.has_power() { profile.idle_w } else { 0.0 };

    let mut arrivals = 0u64;
    let mut completed = 0u64;
    let mut on_time = 0u64;
    let mut busy_total_s = 0.0f64;
    let mut gpu_hours = 0.0f64;
    let mut cost_usd = 0.0f64;
    let mut energy_j_total = 0.0f64;

    for w in 0..fleet.windows {
        let gpus = scaler.begin_window(&fleet.autoscaler, w);
        let w0 = w as f64 * fleet.window_s;
        let w1 = w0 + fleet.window_s;

        let mut win = FleetWindow::default();
        if fast {
            // New capacity comes up idle at the window start; removed
            // GPUs keep (and finish) work already dispatched to them.
            if free_t.len() < gpus {
                free_t.resize(gpus, w0);
            } else {
                free_t.truncate(gpus);
            }
            if rr_next >= gpus {
                rr_next = 0;
            }
            // Window totals accumulate in locals (folded into `win`
            // after the loop) so the hot loop touches only registers.
            let mut n = 0u64;
            let mut late = 0u64;
            let mut busy = 0.0f64;
            let mut busy_j = 0.0f64;
            let (mut t, mut m) = match pending.take() {
                Some(a) => a,
                None => stream.next(),
            };
            while t < w1 {
                let g = rr_next;
                rr_next += 1;
                if rr_next == gpus {
                    rr_next = 0;
                }
                let fm = &models[m];
                let free = free_t[g];
                let start = if t > free { t } else { free };
                let finish = start + fm.service_s;
                free_t[g] = finish;
                busy += fm.service_s;
                busy_j += fm.energy_j;
                let lat = finish - t;
                late += u64::from(lat > fm.slo_delta_s);
                n += 1;
                // Systematic 1-in-K sample into the sketch: counters
                // stay exact; quantiles are estimated on the sampled
                // sub-stream (see the module docs).
                if n.wrapping_add(lat_phase).is_multiple_of(FAST_LANE_SKETCH_EVERY) {
                    latency.observe(lat);
                }
                let nx = stream.next();
                t = nx.0;
                m = nx.1;
            }
            pending = Some((t, m));
            lat_phase = lat_phase.wrapping_add(n);
            win.arrivals = n;
            win.completed = n;
            win.on_time = n - late;
            win.busy_s = busy;
            win.energy_j = busy_j;
        } else {
            // General lane: one bounded-horizon DES per window via the
            // arrival-source hook. GPUs start the window idle — the
            // stationary-within-window approximation (window ≫ service
            // time keeps the boundary error small).
            let mut cfg = ScenarioCfg::new(
                gpus,
                fleet.mix.clone(),
                fleet.region_process(idx),
                fleet.scheduler,
                fleet.slo,
                fleet.window_s,
                fleet.seed,
            );
            cfg.router = fleet.router;
            cfg.full_records = false;
            let mut src = WindowSource { stream: &mut stream, w0, w1, pending: &mut pending };
            let res = simulate_stream(&cfg, profile, registry, &mut src);
            win.arrivals = res.arrivals;
            win.completed = res.stats.completed;
            win.on_time = res.stats.on_time;
            win.busy_s = res.busy_s.iter().sum();
            win.energy_j = res
                .energy
                .as_ref()
                .map(|e| e.busy_energy_j.iter().sum())
                .unwrap_or(0.0);
            latency.merge(&res.stats.latency_sketch);
        }

        let billed = gpus + scaler.warm;
        win.gpu_s = billed as f64 * fleet.window_s;
        let window_hours = win.gpu_s / 3600.0;
        win.cost_usd = window_hours * cluster.price_per_gpu_hr;
        // Billed capacity not running batches — serving gaps plus the
        // warm pool — idles at the SKU's idle draw.
        win.energy_j += (win.gpu_s - win.busy_s).max(0.0) * idle_w;

        arrivals += win.arrivals;
        completed += win.completed;
        on_time += win.on_time;
        busy_total_s += win.busy_s;
        gpu_hours += window_hours;
        cost_usd += win.cost_usd;
        energy_j_total += win.energy_j;

        let util = win.busy_s / (gpus as f64 * fleet.window_s);
        series.observe_at(w0, |v| v.merge(&win));
        scaler.end_window(&fleet.autoscaler, w, util);
    }
    latency.flush();

    let labels = [("cluster", cluster.name.as_str())];
    registry.counter_with("fleet_requests_total", &labels).add(arrivals);
    registry.counter_with("fleet_completed_total", &labels).add(completed);
    registry.counter_with("fleet_slo_miss_total", &labels).add(completed - on_time);
    registry.gauge_with("fleet_gpu_hours", &labels).set(gpu_hours);
    registry.gauge_with("fleet_cost_usd", &labels).set(cost_usd);
    registry.describe("fleet_requests_total", "fleet arrivals by cluster");
    registry.describe("fleet_completed_total", "fleet completions by cluster");
    registry.describe("fleet_slo_miss_total", "fleet deadline misses by cluster");
    registry.describe("fleet_gpu_hours", "provisioned GPU-hours billed by cluster");
    registry.describe("fleet_cost_usd", "dollars billed by cluster");
    if profile.has_power() {
        registry.gauge_with("fleet_wh_total", &labels).set(energy_j_total / 3600.0);
        registry.describe("fleet_wh_total", "modeled energy by cluster, watt-hours");
    }

    ClusterResult {
        name: cluster.name.clone(),
        sku: cluster.sku.clone(),
        arrivals,
        completed,
        on_time,
        busy_s: busy_total_s,
        gpu_hours,
        cost_usd,
        energy_wh: energy_j_total / 3600.0,
        min_gpus: scaler.min_seen,
        max_gpus: scaler.max_seen,
        latency,
        series,
    }
}

/// Adapts one window of a [`RegionStream`] to the cluster DES: yields
/// window-relative times for arrivals in `[w0, w1)`, parking the first
/// beyond-window arrival for the next window.
struct WindowSource<'a> {
    stream: &'a mut RegionStream,
    w0: f64,
    w1: f64,
    pending: &'a mut Option<(f64, usize)>,
}

impl ArrivalSource for WindowSource<'_> {
    fn next_arrival(&mut self) -> Option<(f64, usize)> {
        let (t, m) = match self.pending.take() {
            Some(a) => a,
            None => self.stream.next(),
        };
        if t < self.w1 {
            Some((t - self.w0, m))
        } else {
            *self.pending = Some((t, m));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::simulate_stream;
    use crate::profile::ServiceCurve;
    use mmg_models::ModelId;

    fn test_profile() -> ServiceProfile {
        ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.1),
            ServiceCurve::constant(ModelId::Parti, 0.4),
        ])
    }

    fn test_fleet(windows: usize) -> FleetCfg {
        FleetCfg {
            clusters: vec![
                ClusterCfg {
                    name: "us".into(),
                    sku: "a100".into(),
                    gpus: 4,
                    price_per_gpu_hr: 2.0,
                    weight: 2.0,
                    phase_s: 0.0,
                },
                ClusterCfg {
                    name: "eu".into(),
                    sku: "h100".into(),
                    gpus: 2,
                    price_per_gpu_hr: 4.0,
                    weight: 1.0,
                    phase_s: 40.0,
                },
                ClusterCfg {
                    name: "apac".into(),
                    sku: "l4".into(),
                    gpus: 2,
                    price_per_gpu_hr: 0.8,
                    weight: 1.0,
                    phase_s: 80.0,
                },
            ],
            mix: RequestMix::parse("sd:8,parti:2").unwrap(),
            arrival: ArrivalProcess::diurnal(60.0),
            scheduler: SchedulerKind::Fifo,
            router: RouterKind::RoundRobin,
            slo: SloSpec::ServiceMultiple(4.0),
            window_s: 60.0,
            windows,
            autoscaler: AutoscalerPolicy::Fixed,
            seed: 42,
        }
    }

    #[test]
    fn region_streams_partition_the_global_stream() {
        // The split satellite's reconciliation check: pulling the global
        // merged stream and filtering by region must equal pulling each
        // region stream directly — counts, bit-exact timestamps, and
        // model draws — including diurnal phase offsets.
        let fleet = test_fleet(4);
        let mut global = GlobalStream::new(&fleet);
        let mut expected: Vec<Vec<(u64, usize)>> = vec![Vec::new(); fleet.clusters.len()];
        let n = 5000;
        for _ in 0..n {
            let (t, r, m) = global.next();
            expected[r].push((t.to_bits(), m));
        }
        let total: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(total, n, "merge must neither drop nor invent arrivals");
        for (r, region_expected) in expected.iter().enumerate() {
            assert!(!region_expected.is_empty(), "region {r} got no arrivals");
            let mut stream = RegionStream::new(&fleet, r);
            for (i, &(t_bits, m)) in region_expected.iter().enumerate() {
                let (t, mix_idx) = stream.next();
                assert_eq!(t.to_bits(), t_bits, "region {r} arrival {i} timestamp");
                assert_eq!(mix_idx, m, "region {r} arrival {i} model");
            }
        }
    }

    #[test]
    fn global_stream_is_time_ordered_and_rate_weighted() {
        let fleet = test_fleet(4);
        let mut global = GlobalStream::new(&fleet);
        let mut counts = vec![0u64; fleet.clusters.len()];
        let mut last = 0.0;
        for _ in 0..20_000 {
            let (t, r, _) = global.next();
            assert!(t >= last, "merged stream went backwards");
            last = t;
            counts[r] += 1;
        }
        // Region 0 has half the weight; 1 and 2 a quarter each.
        let total: u64 = counts.iter().sum();
        let share0 = counts[0] as f64 / total as f64;
        assert!((share0 - 0.5).abs() < 0.03, "region 0 share {share0}");
    }

    #[test]
    fn fast_lane_matches_the_event_driven_cluster() {
        // One window, FIFO + round-robin: the closed-form fast lane must
        // reproduce the general DES sample path. Counts are compared
        // exactly; float sums within tolerance (the two paths accumulate
        // in different orders).
        let mut fleet = test_fleet(1);
        fleet.window_s = 300.0;
        let profile = test_profile();
        let registry = Registry::new();
        let fast = run_cluster(&fleet, 0, &profile, &registry);

        let mut cfg = ScenarioCfg::new(
            fleet.clusters[0].gpus,
            fleet.mix.clone(),
            fleet.region_process(0),
            SchedulerKind::Fifo,
            fleet.slo,
            fleet.window_s,
            fleet.seed,
        );
        cfg.router = RouterKind::RoundRobin;
        cfg.full_records = false;
        let mut stream = RegionStream::new(&fleet, 0);
        let mut pending = None;
        let mut src = WindowSource {
            stream: &mut stream,
            w0: 0.0,
            w1: fleet.window_s,
            pending: &mut pending,
        };
        let slow = simulate_stream(&cfg, &profile, &Registry::new(), &mut src);

        assert_eq!(fast.arrivals, slow.arrivals);
        assert_eq!(fast.completed, slow.stats.completed);
        assert_eq!(fast.on_time, slow.stats.on_time);
        let slow_busy: f64 = slow.busy_s.iter().sum();
        assert!(
            (fast.busy_s - slow_busy).abs() < 1e-6,
            "busy {} vs {}",
            fast.busy_s,
            slow_busy
        );
        let (fp99, sp99) = (
            fast.latency.quantile(0.99).unwrap(),
            slow.stats.latency_sketch.quantile(0.99).unwrap(),
        );
        assert!(
            (fp99 - sp99).abs() / sp99.max(1e-9) < 0.05,
            "p99 {fp99} vs {sp99}"
        );
    }

    #[test]
    fn window_boundaries_do_not_lose_arrivals() {
        // Many small windows vs one big window: the fast lane carries
        // GPU state across boundaries, so the two runs are the same DES
        // and must agree exactly.
        let profile = test_profile();
        let mut many = test_fleet(10);
        many.window_s = 30.0;
        let mut one = test_fleet(1);
        one.window_s = 300.0;
        let a = run_cluster(&many, 0, &profile, &Registry::new());
        let b = run_cluster(&one, 0, &profile, &Registry::new());
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.on_time, b.on_time);
        assert!((a.busy_s - b.busy_s).abs() < 1e-6);
    }

    #[test]
    fn run_cluster_is_deterministic() {
        let fleet = test_fleet(3);
        let profile = test_profile();
        let a = run_cluster(&fleet, 1, &profile, &Registry::new());
        let b = run_cluster(&fleet, 1, &profile, &Registry::new());
        assert_eq!(a, b);
    }

    #[test]
    fn general_lane_serves_dynamic_batching() {
        let mut fleet = test_fleet(3);
        fleet.scheduler = SchedulerKind::Dynamic { max_batch: 8 };
        fleet.router = RouterKind::LeastWork;
        let res = run_cluster(&fleet, 0, &test_profile(), &Registry::new());
        assert!(res.arrivals > 0);
        assert!(res.completed > 0);
        assert!(res.latency.count() == res.completed);
    }

    #[test]
    fn fixed_policy_bills_flat_capacity() {
        let fleet = test_fleet(5);
        let res = run_cluster(&fleet, 2, &test_profile(), &Registry::new());
        // 2 GPUs × 5 windows × 60 s at $0.8/GPU-hr.
        let hours = 2.0 * 5.0 * 60.0 / 3600.0;
        assert!((res.gpu_hours - hours).abs() < 1e-9);
        assert!((res.cost_usd - hours * 0.8).abs() < 1e-9);
        assert_eq!((res.min_gpus, res.max_gpus), (2, 2));
    }

    #[test]
    fn reactive_policy_scales_up_under_overload() {
        let mut fleet = test_fleet(8);
        // Offered load far beyond 2 initial GPUs' capacity.
        fleet.arrival = ArrivalProcess::poisson(400.0);
        fleet.clusters = vec![ClusterCfg {
            name: "hot".into(),
            sku: "a100".into(),
            gpus: 2,
            price_per_gpu_hr: 2.0,
            weight: 1.0,
            phase_s: 0.0,
        }];
        fleet.autoscaler = AutoscalerPolicy::Reactive {
            target_util: 0.7,
            min_gpus: 2,
            max_gpus: 64,
            lag_windows: 2,
            warm_pool: 4,
            churn: None,
        };
        let res = run_cluster(&fleet, 0, &test_profile(), &Registry::new());
        assert!(res.max_gpus > 2, "autoscaler never scaled up");
        assert!(res.max_gpus <= 64);
        // Warm pool is billed: gpu-hours exceed the serving capacity
        // alone for at least the warm windows.
        assert!(res.gpu_hours > 2.0 * 8.0 * 60.0 / 3600.0);
    }

    #[test]
    fn spot_churn_reclaims_and_restores_capacity() {
        let mut fleet = test_fleet(20);
        fleet.clusters.truncate(1);
        fleet.clusters[0].gpus = 16;
        fleet.autoscaler = AutoscalerPolicy::Reactive {
            target_util: 0.7,
            min_gpus: 4,
            max_gpus: 32,
            lag_windows: 1,
            warm_pool: 0,
            churn: Some(SpotChurn { prob: 0.5, frac: 0.25 }),
        };
        let res = run_cluster(&fleet, 0, &test_profile(), &Registry::new());
        assert!(res.min_gpus < 16, "churn never fired at prob 0.5 over 20 windows");
        // Determinism across repeat runs (the churn stream is seeded).
        let res2 = run_cluster(&fleet, 0, &test_profile(), &Registry::new());
        assert_eq!(res, res2);
    }

    #[test]
    fn fleet_report_is_deterministic_and_complete() {
        let fleet = test_fleet(4);
        let profile = test_profile();
        let clusters: Vec<ClusterResult> = (0..fleet.clusters.len())
            .map(|i| run_cluster(&fleet, i, &profile, &Registry::new()))
            .collect();
        let result = FleetResult::from_clusters(clusters);
        assert_eq!(
            result.arrivals(),
            result.clusters.iter().map(|c| c.arrivals).sum::<u64>()
        );
        let report = FleetReport::new(&fleet, &result);
        let again = FleetReport::new(&fleet, &result);
        assert_eq!(report, again);
        for c in &fleet.clusters {
            assert!(report.render().contains(&c.name), "report missing {}", c.name);
        }
        assert!(report.render().contains("fleet totals"));
        assert!(report.render().contains("$"));
    }

    #[test]
    fn merged_series_conserves_totals() {
        let fleet = test_fleet(6);
        let profile = test_profile();
        let clusters: Vec<ClusterResult> = (0..fleet.clusters.len())
            .map(|i| run_cluster(&fleet, i, &profile, &Registry::new()))
            .collect();
        let result = FleetResult::from_clusters(clusters);
        let merged_arrivals: u64 =
            result.series.iter().map(|(_, _, w)| w.arrivals).sum();
        assert_eq!(merged_arrivals, result.arrivals());
        let merged_cost: f64 = result.series.iter().map(|(_, _, w)| w.cost_usd).sum();
        assert!((merged_cost - result.cost_usd()).abs() < 1e-9);
    }

    #[test]
    #[ignore = "throughput probe; run in release mode"]
    fn fast_lane_throughput_probe() {
        let mut fleet = test_fleet(10);
        fleet.clusters.truncate(1);
        fleet.clusters[0].gpus = 16;
        fleet.arrival = ArrivalProcess::poisson(120.0); // util ~0.9-ish
        fleet.window_s = 10_000.0;
        let profile = test_profile();
        let t0 = std::time::Instant::now();
        let res = run_cluster(&fleet, 0, &profile, &Registry::new());
        let dt = t0.elapsed().as_secs_f64();
        let rps = res.arrivals as f64 / dt;
        eprintln!(
            "fast lane: {} requests in {:.3} s = {:.2} M req/s",
            res.arrivals,
            dt,
            rps / 1e6
        );
        assert!(res.arrivals > 10_000_000);
    }

    #[test]
    fn metered_fleets_carry_energy_and_unmetered_stay_zero() {
        let fleet = test_fleet(4);
        let registry = Registry::new();
        let plain = run_cluster(&fleet, 0, &test_profile(), &registry);
        assert_eq!(plain.energy_wh, 0.0, "unmetered profile must not invent energy");
        assert!(!registry.render_prometheus().contains("fleet_wh_total"));

        let metered = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.1).with_draw_w(320.0),
            ServiceCurve::constant(ModelId::Parti, 0.4).with_draw_w(260.0),
        ])
        .with_idle_w(55.0);
        let reg2 = Registry::new();
        let res = run_cluster(&fleet, 0, &metered, &reg2);
        // Power is observability, not dynamics: the metered run walks
        // the identical sample path.
        assert_eq!(res.arrivals, plain.arrivals);
        assert_eq!(res.busy_s.to_bits(), plain.busy_s.to_bits());
        // Sandwich the integral per window: busy time at the cheapest
        // and dearest model draws, plus the billed-idle remainder at
        // the idle draw. (Busy can exceed gpu_s — FIFO backlog bills
        // service time beyond the window — so no whole-horizon ceiling.)
        let (mut lo_j, mut hi_j) = (0.0f64, 0.0f64);
        for (_, _, w) in res.series.iter() {
            let idle_j = (w.gpu_s - w.busy_s).max(0.0) * 55.0;
            lo_j += w.busy_s * 260.0 + idle_j;
            hi_j += w.busy_s * 320.0 + idle_j;
        }
        assert!(
            res.energy_wh >= lo_j / 3600.0 - 1e-9 && res.energy_wh <= hi_j / 3600.0 + 1e-9,
            "energy {} Wh outside [{}, {}]",
            res.energy_wh,
            lo_j / 3600.0,
            hi_j / 3600.0,
        );
        // The window series conserves the total.
        let win_j: f64 = res.series.iter().map(|(_, _, w)| w.energy_j).sum();
        assert!((win_j / 3600.0 - res.energy_wh).abs() < 1e-9);
        assert!(reg2.render_prometheus().contains("fleet_wh_total"));

        let result = FleetResult::from_clusters(vec![res]);
        assert!(result.cost_with_energy_usd() > result.cost_usd());
        assert!(result.wh_per_1k_good() > 0.0);
        let report = FleetReport::new(&fleet, &result);
        assert!(report.render().contains("Wh/1k-ok"));
        assert!(report.render().contains("with energy"));

        // The general lane meters energy too.
        let mut dyn_fleet = test_fleet(4);
        dyn_fleet.scheduler = SchedulerKind::Dynamic { max_batch: 8 };
        let dyn_res = run_cluster(&dyn_fleet, 0, &metered, &Registry::new());
        assert!(dyn_res.energy_wh > 0.0, "general lane lost the energy integral");
    }

    #[test]
    fn bursty_fleets_are_rejected() {
        let mut fleet = test_fleet(2);
        fleet.arrival = ArrivalProcess::bursty(10.0);
        assert!(fleet.validate().is_err());
    }
}
