//! `mmg-flight` — a bounded-overhead, deterministic flight recorder for
//! the serving cluster.
//!
//! Three coordinated pieces turn the streaming simulator's end-of-run
//! aggregates into an inspectable timeline without giving up either
//! determinism or the constant-memory fast path:
//!
//! - **Cluster timeline** ([`FlightRecorder`]): per-GPU lanes of
//!   batch-execution spans ([`BatchSpan`]), scheduler-decision instants
//!   ([`SchedEvent`]), and windowed counters, exported as Chrome-trace /
//!   Perfetto JSON through the same [`mmg_profiler::trace::TraceEvent`]
//!   machinery the roofline profiler uses
//!   ([`FlightRecorder::to_chrome_trace_object`]).
//! - **Windowed time series** ([`ServeWindow`] over
//!   [`mmg_telemetry::WindowedSeries`]): per-window arrival/completion
//!   counts, SLO attainment, queue-depth integral, per-GPU busy time and
//!   a latency [`QuantileSketch`] — mergeable across seeds and worker
//!   pools, backing the `serve-timeline` experiment.
//! - **Lifecycle exemplars** ([`Exemplars`]): a seeded reservoir sample
//!   of K complete request lifecycles plus the top-N worst-latency
//!   lifecycles retained exactly. These are always on (they live in
//!   [`crate::ServeStats`]) so tail latency stays explainable in
//!   streaming mode, where no [`crate::RequestRecord`]s are retained.
//!
//! Every structure here is a pure function of the simulated event
//! sequence and the scenario seed — no wall clock, no unseeded
//! randomness — so traces are byte-identical for a given seed
//! regardless of host, `--jobs`, or repetition. All retention is
//! bounded: spans and instants by explicit caps (with drop counters),
//! the window ring by pair-folding (width doubles when the cap is hit),
//! exemplars by K and N.

use std::collections::BTreeMap;

use mmg_models::ModelId;
use mmg_profiler::trace::TraceEvent;
use mmg_telemetry::{QuantileSketch, WindowValue, WindowedSeries};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

use crate::cluster::RequestRecord;
use crate::workload::model_short_name;

/// Rank-error bound of the per-window latency sketches. Coarser than
/// the run-level [`crate::LATENCY_SKETCH_EPS`]: a window holds a small
/// slice of the run, so a looser eps keeps the ring cheap while p99
/// stays useful for a timeline plot.
pub const FLIGHT_SKETCH_EPS: f64 = 0.005;

/// Sentinel GPU id for cluster-wide scheduler decisions (admission
/// drops) that no single GPU owns; the trace export maps these onto a
/// dedicated "scheduler" lane.
pub const CLUSTER_LANE: u32 = u32::MAX;

/// Flight-recorder configuration: sampling window and retention caps.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightCfg {
    /// Width of the counter-sampling window, simulated seconds.
    pub window_s: f64,
    /// Maximum retained windows; overflow doubles the width (pairwise
    /// fold), so the series always spans the full run.
    pub max_windows: usize,
    /// Maximum retained batch spans; later launches count into
    /// [`FlightRecorder::batches_dropped`] instead of growing memory.
    pub max_batches: usize,
    /// Maximum retained scheduler instants (same overflow policy).
    pub max_instants: usize,
}

impl Default for FlightCfg {
    fn default() -> Self {
        FlightCfg {
            window_s: 1.0,
            max_windows: 240,
            max_batches: 4096,
            max_instants: 8192,
        }
    }
}

impl FlightCfg {
    /// A config whose window width targets ~60 windows over an arrival
    /// horizon of `duration_s` (drain past the horizon may fold once).
    #[must_use]
    pub fn for_horizon(duration_s: f64) -> Self {
        FlightCfg {
            window_s: (duration_s / 60.0).max(1e-9),
            ..FlightCfg::default()
        }
    }
}

/// One executed batch: a complete (`ph:"X"`) span on its GPU's lane.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpan {
    /// GPU that ran the batch.
    pub gpu: u32,
    /// Model served.
    pub model: ModelId,
    /// Requests in the batch.
    pub batch: u32,
    /// Launch instant, simulated seconds.
    pub start_s: f64,
    /// Completion instant, simulated seconds.
    pub finish_s: f64,
    /// Longest queueing delay among the batch's members at launch.
    pub queue_wait_max_s: f64,
    /// Requests still queued on this GPU after the launch.
    pub queued_left: u32,
    /// Whether pod co-scheduling compressed the service time.
    pub pod: bool,
}

/// What the scheduler decided at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedKind {
    /// A batch launched.
    Launch {
        /// Model served.
        model: ModelId,
        /// Batch size.
        batch: u32,
        /// Requests left queued on the GPU.
        queued_left: u32,
    },
    /// Static batching deferred launch until its wait timer expires.
    Hold {
        /// The re-evaluation instant it scheduled.
        retry_at_s: f64,
    },
    /// Admission control rejected an arrival (cluster-wide decision;
    /// `gpu` is [`CLUSTER_LANE`]).
    Drop,
    /// A queued request gave up waiting.
    Abandon {
        /// How long it had waited.
        waited_s: f64,
    },
    /// An SLO burn-rate alert transition (cluster-wide; `gpu` is
    /// [`CLUSTER_LANE`]). Emitted only when the health layer is on, so
    /// default traces are byte-identical with or without this variant
    /// existing.
    Alert {
        /// Index into the policy's rules.
        rule: u32,
        /// `true` = fire, `false` = clear.
        fire: bool,
        /// Burn rate over the rule's long window at evaluation time.
        long_burn: f64,
        /// Burn rate over the rule's short window at evaluation time.
        short_burn: f64,
    },
    /// A ratcheting-queue-depth detector transition (cluster-wide).
    Ratchet {
        /// `true` = fire, `false` = clear.
        fire: bool,
        /// Mean queue depth of the triggering window.
        depth: f64,
    },
}

/// A scheduler-decision instant event on a GPU (or cluster) lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedEvent {
    /// When the decision happened, simulated seconds.
    pub t_s: f64,
    /// Owning GPU lane, or [`CLUSTER_LANE`].
    pub gpu: u32,
    /// The decision.
    pub kind: SchedKind,
}

/// Per-window aggregates of the serving timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWindow {
    /// Requests that arrived in the window (admitted or not).
    pub arrivals: u64,
    /// Requests that completed in the window.
    pub completed: u64,
    /// Completions that met their deadline.
    pub on_time: u64,
    /// Arrivals rejected by admission control.
    pub dropped: u64,
    /// Queued requests that abandoned.
    pub abandoned: u64,
    /// Batches launched in the window.
    pub launches: u64,
    /// `∫ n(t) dt` restricted to the window — divide by the window
    /// width for the time-average in-system depth.
    pub depth_time_s: f64,
    /// Busy seconds per GPU inside the window (span overlap, so a batch
    /// crossing a boundary contributes to both sides).
    pub busy_per_gpu_s: Vec<f64>,
    /// Busy-span energy inside the window, joules: each batch overlap
    /// contributes `overlap_s × draw_w`. Zero when the profile carries
    /// no power figures (draw is 0).
    pub energy_j: f64,
    /// Latency sketch over completions in the window (rank error
    /// [`FLIGHT_SKETCH_EPS`]).
    pub latency: QuantileSketch,
}

impl Default for ServeWindow {
    fn default() -> Self {
        ServeWindow {
            arrivals: 0,
            completed: 0,
            on_time: 0,
            dropped: 0,
            abandoned: 0,
            launches: 0,
            depth_time_s: 0.0,
            busy_per_gpu_s: Vec::new(),
            energy_j: 0.0,
            latency: QuantileSketch::new(FLIGHT_SKETCH_EPS),
        }
    }
}

impl WindowValue for ServeWindow {
    fn merge(&mut self, other: &Self) {
        self.arrivals += other.arrivals;
        self.completed += other.completed;
        self.on_time += other.on_time;
        self.dropped += other.dropped;
        self.abandoned += other.abandoned;
        self.launches += other.launches;
        self.depth_time_s += other.depth_time_s;
        self.energy_j += other.energy_j;
        if self.busy_per_gpu_s.len() < other.busy_per_gpu_s.len() {
            self.busy_per_gpu_s.resize(other.busy_per_gpu_s.len(), 0.0);
        }
        for (dst, src) in self.busy_per_gpu_s.iter_mut().zip(&other.busy_per_gpu_s) {
            *dst += *src;
        }
        self.latency.merge(&other.latency);
    }
}

impl ServeWindow {
    /// SLO attainment among the window's completions (1.0 when none).
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.on_time as f64 / self.completed as f64
        }
    }
}

/// The flight recorder threaded through a [`crate::cluster`] run.
///
/// Construct via [`FlightRecorder::new`], pass to
/// [`crate::cluster::simulate_recorded`], then export with
/// [`FlightRecorder::to_chrome_trace_object`] or walk
/// [`FlightRecorder::series`] directly.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    cfg: FlightCfg,
    gpus: usize,
    /// Windowed timeline aggregates.
    pub series: WindowedSeries<ServeWindow>,
    /// Retained batch spans, launch order (bounded by
    /// [`FlightCfg::max_batches`]).
    pub batches: Vec<BatchSpan>,
    /// Launches not retained because the span cap was hit.
    pub batches_dropped: u64,
    /// Retained scheduler instants, event order (bounded by
    /// [`FlightCfg::max_instants`]).
    pub instants: Vec<SchedEvent>,
    /// Instants not retained because the cap was hit.
    pub instants_dropped: u64,
    /// Idle board draw in watts, set by the simulator when the run's
    /// profile carried power figures. `None` keeps the trace export
    /// byte-identical to a recorder from before the energy layer.
    pub idle_w: Option<f64>,
}

impl FlightRecorder {
    /// A recorder for a `gpus`-GPU run.
    #[must_use]
    pub fn new(cfg: FlightCfg, gpus: usize) -> Self {
        let series = WindowedSeries::new(cfg.window_s, cfg.max_windows.max(2));
        FlightRecorder {
            cfg,
            gpus,
            series,
            batches: Vec::new(),
            batches_dropped: 0,
            instants: Vec::new(),
            instants_dropped: 0,
            idle_w: None,
        }
    }

    /// Marks the recording as power-metered: the trace export gains a
    /// `serve_power_w` counter track whose idle remainder is charged at
    /// `idle_w`. Called by the simulator only when the profile carries
    /// power figures.
    pub(crate) fn enable_power(&mut self, idle_w: f64) {
        self.idle_w = Some(idle_w);
    }

    /// The configuration this recorder was built with.
    #[must_use]
    pub fn cfg(&self) -> &FlightCfg {
        &self.cfg
    }

    /// Cluster size the recorder was built for.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    fn push_instant(&mut self, ev: SchedEvent) {
        if self.instants.len() < self.cfg.max_instants {
            self.instants.push(ev);
        } else {
            self.instants_dropped += 1;
        }
    }

    // -- hooks driven by the simulator event loop --------------------------

    pub(crate) fn on_arrival(&mut self, t_s: f64) {
        self.series.observe_at(t_s, |w| w.arrivals += 1);
    }

    pub(crate) fn on_drop(&mut self, t_s: f64) {
        self.series.observe_at(t_s, |w| w.dropped += 1);
        self.push_instant(SchedEvent { t_s, gpu: CLUSTER_LANE, kind: SchedKind::Drop });
    }

    pub(crate) fn on_abandon(&mut self, t_s: f64, gpu: usize, waited_s: f64) {
        self.series.observe_at(t_s, |w| w.abandoned += 1);
        self.push_instant(SchedEvent {
            t_s,
            gpu: gpu as u32,
            kind: SchedKind::Abandon { waited_s },
        });
    }

    /// Records an SLO burn-rate alert transition on the cluster lane.
    pub(crate) fn on_alert(
        &mut self,
        t_s: f64,
        rule: u32,
        fire: bool,
        long_burn: f64,
        short_burn: f64,
    ) {
        self.push_instant(SchedEvent {
            t_s,
            gpu: CLUSTER_LANE,
            kind: SchedKind::Alert { rule, fire, long_burn, short_burn },
        });
    }

    /// Records a ratcheting-queue-depth transition on the cluster lane.
    pub(crate) fn on_ratchet(&mut self, t_s: f64, fire: bool, depth: f64) {
        self.push_instant(SchedEvent {
            t_s,
            gpu: CLUSTER_LANE,
            kind: SchedKind::Ratchet { fire, depth },
        });
    }

    pub(crate) fn on_hold(&mut self, t_s: f64, gpu: usize, retry_at_s: f64) {
        self.push_instant(SchedEvent {
            t_s,
            gpu: gpu as u32,
            kind: SchedKind::Hold { retry_at_s },
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_launch(
        &mut self,
        gpu: usize,
        model: ModelId,
        batch: usize,
        start_s: f64,
        finish_s: f64,
        queue_wait_max_s: f64,
        queued_left: usize,
        pod: bool,
        draw_w: f64,
    ) {
        let gpus = self.gpus;
        self.series.observe_at(start_s, |w| w.launches += 1);
        self.series.observe_span(start_s, finish_s, |w, overlap_s| {
            if w.busy_per_gpu_s.len() < gpus {
                w.busy_per_gpu_s.resize(gpus, 0.0);
            }
            w.busy_per_gpu_s[gpu] += overlap_s;
            w.energy_j += overlap_s * draw_w;
        });
        if self.batches.len() < self.cfg.max_batches {
            self.batches.push(BatchSpan {
                gpu: gpu as u32,
                model,
                batch: batch as u32,
                start_s,
                finish_s,
                queue_wait_max_s,
                queued_left: queued_left as u32,
                pod,
            });
        } else {
            self.batches_dropped += 1;
        }
        self.push_instant(SchedEvent {
            t_s: start_s,
            gpu: gpu as u32,
            kind: SchedKind::Launch {
                model,
                batch: batch as u32,
                queued_left: queued_left as u32,
            },
        });
    }

    pub(crate) fn on_complete(&mut self, t_s: f64, latency_s: f64, on_time: bool) {
        self.series.observe_at(t_s, |w| {
            w.completed += 1;
            w.on_time += u64::from(on_time);
            w.latency.observe(latency_s);
        });
    }

    pub(crate) fn on_occupancy(&mut self, t0_s: f64, t1_s: f64, in_system: u64) {
        let n = in_system as f64;
        self.series.observe_span(t0_s, t1_s, |w, overlap_s| {
            w.depth_time_s += n * overlap_s;
        });
    }

    // -- trace export ------------------------------------------------------

    /// Converts the recording into Chrome Trace Event Format entries:
    /// thread-name metadata, per-GPU lanes (batch spans + scheduler
    /// instants, time-ordered per lane), the cluster "scheduler" lane,
    /// and windowed `ph:"C"` counter tracks (queue depth, throughput,
    /// goodput, SLO attainment, per-GPU utilization).
    #[must_use]
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        let gpus = self.gpus;
        let sched_tid = gpus as u32;
        let counter_tid = gpus as u32 + 1;
        let mut events: Vec<TraceEvent> = Vec::new();

        let meta = |tid: u32, label: String| {
            let mut args = BTreeMap::new();
            args.insert("name".to_string(), Value::String(label));
            TraceEvent {
                name: "thread_name".to_string(),
                cat: "__metadata".to_string(),
                ph: "M".to_string(),
                ts: 0.0,
                dur: 0.0,
                pid: 1,
                tid,
                args,
            }
        };
        {
            let mut args = BTreeMap::new();
            args.insert("name".to_string(), Value::from("mmg-serve cluster"));
            events.push(TraceEvent {
                name: "process_name".to_string(),
                cat: "__metadata".to_string(),
                ph: "M".to_string(),
                ts: 0.0,
                dur: 0.0,
                pid: 1,
                tid: 0,
                args,
            });
        }
        for g in 0..gpus {
            events.push(meta(g as u32, format!("gpu{g}")));
        }
        events.push(meta(sched_tid, "scheduler".to_string()));
        events.push(meta(counter_tid, "counters".to_string()));

        let instant_event = |ev: &SchedEvent| {
            let tid = if ev.gpu == CLUSTER_LANE { sched_tid } else { ev.gpu };
            let mut args = BTreeMap::new();
            let name = match ev.kind {
                SchedKind::Launch { model, batch, queued_left } => {
                    args.insert(
                        "model".to_string(),
                        Value::from(model_short_name(model)),
                    );
                    args.insert("batch".to_string(), Value::from(u64::from(batch)));
                    args.insert(
                        "queued_left".to_string(),
                        Value::from(u64::from(queued_left)),
                    );
                    "launch"
                }
                SchedKind::Hold { retry_at_s } => {
                    args.insert(
                        "retry_in_ms".to_string(),
                        Value::from(((retry_at_s - ev.t_s) * 1e3).max(0.0)),
                    );
                    "hold"
                }
                SchedKind::Drop => "drop",
                SchedKind::Abandon { waited_s } => {
                    args.insert("waited_ms".to_string(), Value::from(waited_s * 1e3));
                    "abandon"
                }
                SchedKind::Alert { rule, fire, long_burn, short_burn } => {
                    args.insert("rule".to_string(), Value::from(u64::from(rule)));
                    args.insert("long_burn".to_string(), Value::from(long_burn));
                    args.insert("short_burn".to_string(), Value::from(short_burn));
                    if fire {
                        "alert_fire"
                    } else {
                        "alert_clear"
                    }
                }
                SchedKind::Ratchet { fire, depth } => {
                    args.insert("mean_depth".to_string(), Value::from(depth));
                    if fire {
                        "ratchet_fire"
                    } else {
                        "ratchet_clear"
                    }
                }
            };
            TraceEvent {
                name: name.to_string(),
                cat: "serve:sched".to_string(),
                ph: "i".to_string(),
                ts: ev.t_s * 1e6,
                dur: 0.0,
                pid: 1,
                tid,
                args,
            }
        };

        // Per-GPU lanes: batch spans and this GPU's scheduler instants,
        // merged in time order (stable, so simultaneous events keep the
        // deterministic simulation order).
        for g in 0..gpus as u32 {
            let mut lane: Vec<TraceEvent> = Vec::new();
            for b in self.batches.iter().filter(|b| b.gpu == g) {
                let mut args = BTreeMap::new();
                args.insert(
                    "model".to_string(),
                    Value::from(model_short_name(b.model)),
                );
                args.insert("batch".to_string(), Value::from(u64::from(b.batch)));
                args.insert(
                    "queue_wait_max_ms".to_string(),
                    Value::from(b.queue_wait_max_s * 1e3),
                );
                args.insert(
                    "queued_left".to_string(),
                    Value::from(u64::from(b.queued_left)),
                );
                args.insert("pod".to_string(), Value::from(b.pod));
                lane.push(TraceEvent {
                    name: format!("{} x{}", model_short_name(b.model), b.batch),
                    cat: "serve:batch".to_string(),
                    ph: "X".to_string(),
                    ts: b.start_s * 1e6,
                    dur: (b.finish_s - b.start_s) * 1e6,
                    pid: 1,
                    tid: g,
                    args,
                });
            }
            lane.extend(
                self.instants.iter().filter(|ev| ev.gpu == g).map(instant_event),
            );
            lane.sort_by(|a, b| a.ts.total_cmp(&b.ts));
            events.extend(lane);
        }
        events.extend(
            self.instants
                .iter()
                .filter(|ev| ev.gpu == CLUSTER_LANE)
                .map(instant_event),
        );
        if self.batches_dropped > 0 || self.instants_dropped > 0 {
            let mut args = BTreeMap::new();
            args.insert("batches_dropped".to_string(), Value::from(self.batches_dropped));
            args.insert("instants_dropped".to_string(), Value::from(self.instants_dropped));
            events.push(TraceEvent {
                name: "flight_truncated".to_string(),
                cat: "serve:sched".to_string(),
                ph: "i".to_string(),
                ts: self.batches.last().map_or(0.0, |b| b.finish_s * 1e6),
                dur: 0.0,
                pid: 1,
                tid: sched_tid,
                args,
            });
        }

        // Counter tracks, one sample per window at the window start.
        let counter = |name: &str, ts_us: f64, args: BTreeMap<String, Value>| TraceEvent {
            name: name.to_string(),
            cat: "counter".to_string(),
            ph: "C".to_string(),
            ts: ts_us,
            dur: 0.0,
            pid: 1,
            tid: counter_tid,
            args,
        };
        let w_s = self.series.window_s();
        for (start_s, _end_s, win) in self.series.iter() {
            let ts_us = start_s * 1e6;
            let one = |v: f64| {
                let mut args = BTreeMap::new();
                args.insert("value".to_string(), Value::from(v));
                args
            };
            events.push(counter("serve_queue_depth", ts_us, one(win.depth_time_s / w_s)));
            events.push(counter(
                "serve_throughput_rps",
                ts_us,
                one(win.completed as f64 / w_s),
            ));
            events.push(counter(
                "serve_goodput_rps",
                ts_us,
                one(win.on_time as f64 / w_s),
            ));
            events.push(counter(
                "serve_slo_attainment",
                ts_us,
                one(win.slo_attainment()),
            ));
            let mut util = BTreeMap::new();
            for g in 0..gpus {
                let busy = win.busy_per_gpu_s.get(g).copied().unwrap_or(0.0);
                util.insert(format!("gpu{g}"), Value::from(busy / w_s));
            }
            events.push(counter("serve_gpu_util", ts_us, util));
            // Windowed mean cluster draw: busy-span energy plus the idle
            // remainder of every GPU's window at idle draw. Only emitted
            // for power-metered runs so unmetered traces stay
            // byte-identical.
            if let Some(idle_w) = self.idle_w {
                let busy: f64 = win.busy_per_gpu_s.iter().sum();
                let idle_j = (gpus as f64 * w_s - busy).max(0.0) * idle_w;
                events.push(counter(
                    "serve_power_w",
                    ts_us,
                    one((win.energy_j + idle_j) / w_s),
                ));
            }
        }
        events
    }

    /// Serializes the recording to the Perfetto JSON envelope
    /// (`{"traceEvents": [...], "displayTimeUnit": "us"}`) — the same
    /// form [`mmg_profiler::trace::to_chrome_trace_object`] emits, so
    /// the two trace families open in the same viewer.
    ///
    /// # Panics
    ///
    /// Never panics: events contain only serializable primitives.
    #[must_use]
    pub fn to_chrome_trace_object(&self) -> String {
        let events = serde_json::to_value(&self.to_trace_events())
            .expect("trace events always serialize");
        let envelope = Value::Object(vec![
            ("traceEvents".to_string(), events),
            ("displayTimeUnit".to_string(), Value::from("us")),
        ]);
        serde_json::to_string(&envelope).expect("trace envelope always serializes")
    }
}

// ---------------------------------------------------------------------------
// Exemplars
// ---------------------------------------------------------------------------

/// Bounded request-lifecycle exemplars that survive streaming mode: a
/// seeded reservoir sample of K completions (Li's "Algorithm L", so the
/// per-completion cost is O(1) and almost always a single comparison)
/// plus the top-N worst-latency completions retained exactly.
///
/// Determinism: the reservoir is a pure function of the completion
/// sequence and the seed; the worst-N set uses the total order
/// `(latency, arrival id)`, so ties break identically on every run.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplars {
    /// Reservoir capacity K.
    k: usize,
    /// Worst-retention capacity N.
    n: usize,
    /// Uniform sample of completions, insertion order (not sorted).
    reservoir: Vec<RequestRecord>,
    /// Worst completions, ascending `(latency, id)`; the global worst
    /// is last.
    worst: Vec<RequestRecord>,
    /// Completions observed.
    seen: u64,
    /// 1-based index of the next completion the reservoir will admit.
    next_accept: u64,
    /// Algorithm L's running `W` factor.
    w: f64,
    /// `(latency, id)` of `worst[0]`, cached so the per-completion
    /// admission check compares registers instead of chasing into the
    /// `Vec` (the worst list only changes on admission, which is rare).
    worst_floor: f64,
    worst_floor_id: u64,
    rng: StdRng,
}

impl Exemplars {
    /// An empty exemplar set holding up to `k` reservoir samples and
    /// the `n` worst-latency lifecycles, seeded deterministically.
    #[must_use]
    pub fn new(k: usize, n: usize, seed: u64) -> Self {
        Exemplars {
            k,
            n,
            reservoir: Vec::with_capacity(k),
            worst: Vec::with_capacity(n),
            seen: 0,
            next_accept: 0,
            w: 1.0,
            worst_floor: f64::NEG_INFINITY,
            worst_floor_id: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x666C_6967_6874), // "flight"
        }
    }

    /// Reservoir capacity K.
    #[must_use]
    pub fn reservoir_k(&self) -> usize {
        self.k
    }

    /// Worst-retention capacity N.
    #[must_use]
    pub fn worst_n(&self) -> usize {
        self.n
    }

    /// Completions observed so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The uniform lifecycle sample (at most K records, insertion
    /// order).
    #[must_use]
    pub fn reservoir(&self) -> &[RequestRecord] {
        &self.reservoir
    }

    /// The exact worst-latency lifecycles, ascending by
    /// `(latency, arrival id)` — the run's worst request is last.
    #[must_use]
    pub fn worst(&self) -> &[RequestRecord] {
        &self.worst
    }

    /// Advances Algorithm L: updates `W` and draws the geometric skip
    /// to the next admitted completion index.
    fn advance(&mut self) {
        let unit = Uniform::new(0.0f64, 1.0);
        let u1: f64 = unit.sample(&mut self.rng).max(f64::MIN_POSITIVE);
        self.w *= (u1.ln() / self.k as f64).exp();
        let u2: f64 = unit.sample(&mut self.rng).max(f64::MIN_POSITIVE);
        let denom = (1.0 - self.w).ln();
        let skip = if denom == 0.0 { f64::INFINITY } else { u2.ln() / denom };
        self.next_accept = if skip.is_finite() && skip < 1e18 {
            self.seen.saturating_add(skip as u64).saturating_add(1)
        } else {
            u64::MAX
        };
    }

    /// Observes one completion. `make` is only invoked when the record
    /// is actually retained, so the streaming fast path usually pays a
    /// counter bump and one comparison.
    pub(crate) fn observe(
        &mut self,
        latency_s: f64,
        arrival_id: u64,
        make: impl FnOnce() -> RequestRecord,
    ) {
        self.seen += 1;
        let take_reservoir = self.k > 0
            && (self.reservoir.len() < self.k || self.seen == self.next_accept);
        let take_worst = self.n > 0
            && (self.worst.len() < self.n
                || latency_s
                    .total_cmp(&self.worst_floor)
                    .then(arrival_id.cmp(&self.worst_floor_id))
                    .is_gt());
        if !take_reservoir && !take_worst {
            return;
        }
        let rec = make();
        if take_reservoir {
            if self.reservoir.len() < self.k {
                self.reservoir.push(rec.clone());
                if self.reservoir.len() == self.k {
                    self.advance();
                }
            } else {
                let slot = Uniform::new(0usize, self.k).sample(&mut self.rng);
                self.reservoir[slot] = rec.clone();
                self.advance();
            }
        }
        if take_worst {
            let pos = self
                .worst
                .partition_point(|r| {
                    r.latency_s()
                        .total_cmp(&latency_s)
                        .then(r.id.cmp(&arrival_id))
                        .is_lt()
                });
            self.worst.insert(pos, rec);
            if self.worst.len() > self.n {
                self.worst.remove(0);
            }
            if self.worst.len() == self.n {
                self.worst_floor = self.worst[0].latency_s();
                self.worst_floor_id = self.worst[0].id;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{
        simulate, simulate_recorded, ScenarioCfg, SchedulerKind, SloSpec,
    };
    use crate::profile::{ServiceCurve, ServiceProfile};
    use crate::workload::{ArrivalProcess, RequestMix};
    use mmg_telemetry::Registry;

    fn profile() -> ServiceProfile {
        ServiceProfile::new(vec![ServiceCurve::new(
            ModelId::StableDiffusion,
            vec![(1, 0.5), (4, 0.65), (16, 1.0)],
        )])
    }

    fn scenario(rate: f64, duration_s: f64) -> ScenarioCfg {
        ScenarioCfg::new(
            2,
            RequestMix::single(ModelId::StableDiffusion),
            ArrivalProcess::poisson(rate),
            SchedulerKind::Dynamic { max_batch: 8 },
            SloSpec::FixedS(2.0),
            duration_s,
            11,
        )
    }

    fn record(rate: f64, duration_s: f64) -> (crate::SimResult, FlightRecorder) {
        let cfg = scenario(rate, duration_s);
        simulate_recorded(
            &cfg,
            &profile(),
            &Registry::new(),
            FlightCfg { window_s: 5.0, ..FlightCfg::default() },
        )
    }

    #[test]
    fn recording_does_not_change_the_simulation() {
        let cfg = scenario(3.0, 120.0);
        let plain = simulate(&cfg, &profile(), &Registry::new());
        let (recorded, _fl) = simulate_recorded(
            &cfg,
            &profile(),
            &Registry::new(),
            FlightCfg::default(),
        );
        assert_eq!(plain, recorded);
    }

    #[test]
    fn window_totals_match_run_aggregates() {
        let (r, fl) = record(3.0, 120.0);
        let arrivals: u64 = fl.series.iter().map(|(_, _, w)| w.arrivals).sum();
        let completed: u64 = fl.series.iter().map(|(_, _, w)| w.completed).sum();
        let on_time: u64 = fl.series.iter().map(|(_, _, w)| w.on_time).sum();
        assert_eq!(arrivals, r.arrivals);
        assert_eq!(completed, r.stats.completed);
        assert_eq!(on_time, r.stats.on_time);
        // Busy seconds split across windows sum back to the exact per-GPU
        // totals, and the depth integral matches the run's.
        for g in 0..2 {
            let busy: f64 = fl
                .series
                .iter()
                .map(|(_, _, w)| w.busy_per_gpu_s.get(g).copied().unwrap_or(0.0))
                .sum();
            assert!((busy - r.busy_s[g]).abs() < 1e-6, "gpu {g}: {busy} vs {}", r.busy_s[g]);
        }
        let area: f64 = fl.series.iter().map(|(_, _, w)| w.depth_time_s).sum();
        assert!((area - r.area_requests_s).abs() < 1e-6);
    }

    #[test]
    fn batch_spans_are_within_run_and_ordered() {
        let (r, fl) = record(3.0, 120.0);
        assert!(!fl.batches.is_empty());
        for b in &fl.batches {
            assert!(b.finish_s > b.start_s);
            assert!(b.finish_s <= r.end_s + 1e-9);
            assert!(b.queue_wait_max_s >= 0.0);
            assert!((b.gpu as usize) < 2);
        }
        // Launch order is chronological per GPU.
        for g in 0..2u32 {
            let starts: Vec<f64> =
                fl.batches.iter().filter(|b| b.gpu == g).map(|b| b.start_s).collect();
            assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        }
        let launches: u64 = fl.series.iter().map(|(_, _, w)| w.launches).sum();
        assert_eq!(launches, fl.batches.len() as u64 + fl.batches_dropped);
    }

    #[test]
    fn caps_bound_retention_and_count_drops() {
        let cfg = scenario(4.0, 400.0);
        let (_r, fl) = simulate_recorded(
            &cfg,
            &profile(),
            &Registry::new(),
            FlightCfg {
                window_s: 5.0,
                max_windows: 8,
                max_batches: 16,
                max_instants: 16,
            },
        );
        assert_eq!(fl.batches.len(), 16);
        assert!(fl.batches_dropped > 0);
        assert_eq!(fl.instants.len(), 16);
        assert!(fl.instants_dropped > 0);
        assert!(fl.series.len() <= 8);
        // The fold kept full-run coverage: windows span past the horizon.
        assert!(fl.series.window_s() > 5.0);
    }

    #[test]
    fn trace_events_shape() {
        let (_r, fl) = record(3.0, 120.0);
        let evs = fl.to_trace_events();
        // Lanes monotonically ordered per tid (complete events).
        for tid in 0..2u32 {
            let ts: Vec<f64> = evs
                .iter()
                .filter(|e| e.ph == "X" && e.tid == tid)
                .map(|e| e.ts)
                .collect();
            assert!(!ts.is_empty(), "no spans on gpu lane {tid}");
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "lane {tid} out of order");
        }
        // Scheduler instants present.
        assert!(evs.iter().any(|e| e.ph == "i" && e.name == "launch"));
        // At least 4 distinct counter tracks, all samples non-negative.
        let tracks: std::collections::BTreeSet<&str> = evs
            .iter()
            .filter(|e| e.ph == "C")
            .map(|e| e.name.as_str())
            .collect();
        assert!(tracks.len() >= 4, "tracks: {tracks:?}");
        for e in evs.iter().filter(|e| e.ph == "C") {
            for (k, v) in &e.args {
                let v = v.as_f64().unwrap_or_else(|| panic!("numeric {k}"));
                assert!(v >= 0.0, "negative counter {} {k}", e.name);
            }
        }
        // Envelope parses back.
        let json = fl.to_chrome_trace_object();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.field("traceEvents").and_then(serde_json::Value::as_array).is_some());
    }

    #[test]
    fn power_track_appears_only_for_metered_profiles() {
        let cfg = scenario(3.0, 120.0);
        // Unmetered: no power track at all.
        let (_r, plain) = simulate_recorded(
            &cfg,
            &profile(),
            &Registry::new(),
            FlightCfg { window_s: 5.0, ..FlightCfg::default() },
        );
        assert!(plain.idle_w.is_none());
        assert!(plain.to_trace_events().iter().all(|e| e.name != "serve_power_w"));

        // Metered: every window samples a draw between idle and the
        // busy ceiling.
        let idle_w = 55.0;
        let draw_w = 320.0;
        let metered = ServiceProfile::new(vec![ServiceCurve::new(
            ModelId::StableDiffusion,
            vec![(1, 0.5), (4, 0.65), (16, 1.0)],
        )
        .with_draw_w(draw_w)])
        .with_idle_w(idle_w);
        let (r, fl) = simulate_recorded(
            &cfg,
            &metered,
            &Registry::new(),
            FlightCfg { window_s: 5.0, ..FlightCfg::default() },
        );
        assert_eq!(fl.idle_w, Some(idle_w));
        let samples: Vec<f64> = fl
            .to_trace_events()
            .iter()
            .filter(|e| e.ph == "C" && e.name == "serve_power_w")
            .map(|e| e.args["value"].as_f64().expect("float watts"))
            .collect();
        assert!(!samples.is_empty());
        for w in &samples {
            // Cluster draw: 2 GPUs each between idle and full draw.
            assert!((2.0 * idle_w * 0.99..=2.0 * draw_w * 1.01).contains(w), "draw {w}");
        }
        // Window energy folds back to the run's busy-span total.
        let win_j: f64 = fl.series.iter().map(|(_, _, w)| w.energy_j).sum();
        let busy_j: f64 =
            r.energy.as_ref().expect("metered").busy_energy_j.iter().sum();
        assert!((win_j - busy_j).abs() < 1e-6 * busy_j.max(1.0), "{win_j} vs {busy_j}");
    }

    #[test]
    fn trace_is_deterministic() {
        let (_ra, a) = record(3.0, 120.0);
        let (_rb, b) = record(3.0, 120.0);
        assert_eq!(a, b);
        assert_eq!(a.to_chrome_trace_object(), b.to_chrome_trace_object());
    }

    #[test]
    fn exemplars_worst_n_is_exact() {
        let cfg = scenario(4.0, 200.0);
        let r = simulate(&cfg, &profile(), &Registry::new());
        // Streaming mode must retain the same worst set.
        let streaming = simulate(
            &ScenarioCfg { full_records: false, ..cfg },
            &profile(),
            &Registry::new(),
        );
        let worst = streaming.stats.exemplars.worst();
        assert_eq!(worst.len(), 4.min(r.records.len()));
        // Exact: matches a full sort of the retained records.
        let mut by_latency: Vec<&crate::RequestRecord> = r.records.iter().collect();
        by_latency.sort_by(|a, b| {
            a.latency_s().total_cmp(&b.latency_s()).then(a.id.cmp(&b.id))
        });
        let expect: Vec<u64> =
            by_latency[by_latency.len() - worst.len()..].iter().map(|r| r.id).collect();
        let got: Vec<u64> = worst.iter().map(|r| r.id).collect();
        assert_eq!(got, expect);
        assert!(worst.windows(2).all(|w| w[0].latency_s() <= w[1].latency_s()));
    }

    #[test]
    fn exemplars_reservoir_is_a_uniform_size_k_sample() {
        let cfg = scenario(4.0, 300.0);
        let r = simulate(&cfg, &profile(), &Registry::new());
        let ex = &r.stats.exemplars;
        assert_eq!(ex.reservoir().len(), ex.reservoir_k().min(r.records.len()));
        assert_eq!(ex.seen(), r.stats.completed);
        // Every sampled lifecycle is a real completion.
        for s in ex.reservoir() {
            let found = r.records.iter().find(|rec| rec.id == s.id).expect("sampled id exists");
            assert_eq!(found, s);
        }
        // Distinct ids (sampling without replacement).
        let mut ids: Vec<u64> = ex.reservoir().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ex.reservoir().len());
    }

    #[test]
    fn exemplars_deterministic_per_seed_and_divergent_across_seeds() {
        let cfg = scenario(4.0, 200.0);
        let a = simulate(&cfg, &profile(), &Registry::new());
        let b = simulate(&cfg, &profile(), &Registry::new());
        assert_eq!(a.stats.exemplars, b.stats.exemplars);
        let c = simulate(&ScenarioCfg { seed: 12, ..cfg }, &profile(), &Registry::new());
        assert_ne!(
            a.stats.exemplars.reservoir(),
            c.stats.exemplars.reservoir(),
            "different seeds should sample different lifecycles"
        );
    }
}
