//! KV-cache memory model: per-GPU byte accounting against the HBM
//! budget.
//!
//! Autoregressive decode is a *memory capacity* problem as much as a
//! bandwidth one: every resident sequence pins `kv_bytes_per_token ×
//! (prompt + generated)` bytes of fp16 K/V state, and the sum across
//! the in-flight batch competes with the model weights for the SKU's
//! HBM (`mmg_gpu::DeviceSpec::hbm_capacity_gib`). This module is the
//! ledger the token-serving engine balances on: exact integer byte
//! accounting with a conservation invariant (`allocated − freed ==
//! resident`, checked every iteration), a reservation channel for
//! admission control, and a preemption counter for the
//! eviction-and-recompute path.

use mmg_gpu::DeviceSpec;

/// Bytes per GiB (the unit `DeviceSpec` quotes HBM capacity in).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// KV-cache admission policy: what a sequence must be able to fit
/// before it is admitted into the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvAdmission {
    /// Admit when the *prompt's* KV fits. Decode growth is paid
    /// optimistically as it happens, so cache overflow is resolved by
    /// preempting (evicting and later recomputing) the youngest
    /// sequence — the vLLM-style default that maximizes batch size at
    /// the cost of preemption churn under pressure.
    Prompt,
    /// Admit only when the *worst-case* footprint (prompt + full
    /// output) can be reserved. No preemption can ever occur, but the
    /// batch runs smaller — conservative admission.
    Reserve,
}

impl KvAdmission {
    /// Parses `prompt` | `reserve`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "prompt" => Ok(KvAdmission::Prompt),
            "reserve" => Ok(KvAdmission::Reserve),
            other => Err(format!(
                "unknown admission policy '{other}'; expected prompt | reserve"
            )),
        }
    }

    /// The CLI name of the policy.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            KvAdmission::Prompt => "prompt",
            KvAdmission::Reserve => "reserve",
        }
    }
}

/// Per-GPU KV-cache ledger: exact cumulative byte accounting.
///
/// The invariant the engine re-checks at every iteration boundary:
/// `allocated_total − freed_total == resident_bytes`, with
/// `resident_bytes ≤ budget_bytes` at all times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvLedger {
    /// Bytes of HBM available for KV state (capacity − weights, or an
    /// explicit override).
    pub budget_bytes: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Bytes promised to admitted sequences (admission control
    /// channel; `≥ resident` under [`KvAdmission::Reserve`]).
    pub reserved_bytes: u64,
    /// Cumulative bytes ever allocated.
    pub allocated_total: u64,
    /// Cumulative bytes ever freed.
    pub freed_total: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
    /// Sequences evicted for recompute because decode growth hit the
    /// budget.
    pub preemptions: u64,
}

impl KvLedger {
    /// A fresh ledger with the given byte budget.
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        KvLedger {
            budget_bytes,
            resident_bytes: 0,
            reserved_bytes: 0,
            allocated_total: 0,
            freed_total: 0,
            peak_resident_bytes: 0,
            preemptions: 0,
        }
    }

    /// The default budget for a SKU: HBM capacity minus resident model
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics when the weights alone exceed the device's HBM — the
    /// model cannot be served on that SKU at all.
    #[must_use]
    pub fn default_budget(spec: &DeviceSpec, weight_bytes: u64) -> u64 {
        let capacity = spec.hbm_capacity_bytes();
        assert!(
            weight_bytes < capacity,
            "{}: model weights ({:.1} GiB) exceed HBM capacity ({:.0} GiB)",
            spec.name,
            weight_bytes as f64 / GIB,
            spec.hbm_capacity_gib
        );
        capacity - weight_bytes
    }

    /// Whether `bytes` more can be made resident right now.
    #[must_use]
    pub fn fits(&self, bytes: u64) -> bool {
        self.resident_bytes + bytes <= self.budget_bytes
    }

    /// Whether `bytes` more can be *promised* (reservation headroom and
    /// immediate-resident headroom both available).
    #[must_use]
    pub fn can_admit(&self, bytes: u64) -> bool {
        self.reserved_bytes + bytes <= self.budget_bytes && self.fits(bytes)
    }

    /// Promises `bytes` to an admitted sequence.
    pub fn reserve(&mut self, bytes: u64) {
        self.reserved_bytes += bytes;
        debug_assert!(self.reserved_bytes <= self.budget_bytes, "over-reserved");
    }

    /// Releases a sequence's promise (on retire or preempt).
    pub fn unreserve(&mut self, bytes: u64) {
        debug_assert!(self.reserved_bytes >= bytes, "unreserve underflow");
        self.reserved_bytes -= bytes;
    }

    /// Makes `bytes` resident.
    ///
    /// # Panics
    ///
    /// Panics if the allocation would exceed the budget — the engine
    /// must preempt *before* allocating.
    pub fn alloc(&mut self, bytes: u64) {
        assert!(
            self.fits(bytes),
            "KV alloc of {bytes} B over budget ({} resident / {} budget)",
            self.resident_bytes,
            self.budget_bytes
        );
        self.resident_bytes += bytes;
        self.allocated_total += bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
    }

    /// Returns `bytes` to the pool.
    ///
    /// # Panics
    ///
    /// Panics on an underflow (freeing more than is resident).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.resident_bytes,
            "KV free of {bytes} B underflows {} resident",
            self.resident_bytes
        );
        self.resident_bytes -= bytes;
        self.freed_total += bytes;
    }

    /// Records one eviction-for-recompute.
    pub fn count_preemption(&mut self) {
        self.preemptions += 1;
    }

    /// The conservation invariant, checked by the engine at every
    /// iteration boundary.
    ///
    /// # Panics
    ///
    /// Panics if cumulative allocations minus frees disagree with the
    /// resident byte count, or residency exceeds the budget.
    pub fn assert_conserved(&self) {
        assert!(
            self.allocated_total - self.freed_total == self.resident_bytes,
            "KV conservation violated: {} allocated − {} freed != {} resident",
            self.allocated_total,
            self.freed_total,
            self.resident_bytes
        );
        assert!(
            self.resident_bytes <= self.budget_bytes,
            "KV residency {} exceeds budget {}",
            self.resident_bytes,
            self.budget_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_conserves_bytes() {
        let mut l = KvLedger::new(1000);
        l.alloc(400);
        l.alloc(300);
        l.free(200);
        l.assert_conserved();
        assert_eq!(l.resident_bytes, 500);
        assert_eq!(l.allocated_total, 700);
        assert_eq!(l.freed_total, 200);
        assert_eq!(l.peak_resident_bytes, 700);
        l.free(500);
        l.assert_conserved();
        assert_eq!(l.resident_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "over budget")]
    fn alloc_past_budget_panics() {
        let mut l = KvLedger::new(100);
        l.alloc(60);
        l.alloc(41);
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn free_underflow_panics() {
        let mut l = KvLedger::new(100);
        l.alloc(10);
        l.free(11);
    }

    #[test]
    fn reservations_gate_admission() {
        let mut l = KvLedger::new(1000);
        assert!(l.can_admit(600));
        l.reserve(600);
        assert!(!l.can_admit(500), "reservation headroom must block");
        assert!(l.can_admit(400));
        l.unreserve(600);
        l.alloc(900);
        assert!(!l.can_admit(200), "resident headroom must block");
        l.assert_conserved();
    }

    #[test]
    fn default_budget_subtracts_weights() {
        let spec = DeviceSpec::a100_80gb();
        let weights = 14 * (GIB as u64);
        let budget = KvLedger::default_budget(&spec, weights);
        assert_eq!(budget, 66 * (GIB as u64));
    }

    #[test]
    #[should_panic(expected = "exceed HBM capacity")]
    fn oversized_weights_rejected() {
        let spec = DeviceSpec::l4_24gb();
        let _ = KvLedger::default_budget(&spec, 30 * (GIB as u64));
    }

    #[test]
    fn admission_parse_round_trips() {
        assert_eq!(KvAdmission::parse("prompt").unwrap(), KvAdmission::Prompt);
        assert_eq!(KvAdmission::parse("Reserve").unwrap(), KvAdmission::Reserve);
        assert!(KvAdmission::parse("yolo").is_err());
        assert_eq!(KvAdmission::Prompt.name(), "prompt");
    }
}
