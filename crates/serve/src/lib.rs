//! `mmg-serve` — a deterministic discrete-event simulation of a
//! multi-GPU inference cluster serving the paper's model suite.
//!
//! The paper closes on "designing efficient and *deployable* systems"
//! for TTI/TTV workloads; this crate is the deployment story. It
//! simulates a fleet of GPUs serving a mixed request stream of suite
//! models, with service times grounded in the repo's roofline profiler
//! (per-model, per-batch-size cost curves — not hand-picked constants),
//! so the paper's system observations surface as cluster-level effects:
//!
//! - **Batching regimes** (Fig. 5): memory-bandwidth-bound
//!   autoregressive decode amortizes dramatically with batch size, the
//!   compute-bound diffusion UNet barely — so a dynamic batcher wins
//!   big on Parti/LLaMA traffic and modestly on Stable Diffusion.
//! - **Latency heterogeneity** (Table I / Fig. 4): the mix spans two
//!   orders of magnitude of service time, which is why SLOs here can be
//!   per-model multiples rather than one fixed deadline.
//! - **Pod co-scheduling** (Section V): overlapping compute- and
//!   memory-bound stages of concurrent requests buys throughput at
//!   load; the `pods` scheduler models that with per-model factors.
//!
//! Layering:
//!
//! - [`des`] — the event-queue kernel: virtual clock, deterministic
//!   `(time, insertion-seq)` ordering, no wall clock anywhere.
//! - [`workload`] — Poisson / bursty (Markov-modulated) / diurnal
//!   arrival processes and the weighted model [`RequestMix`].
//! - [`profile`] — [`ServiceProfile`]: per-model batch-size cost curves
//!   queried from the real profiler.
//! - [`cluster`] — routers (round-robin, least-work, model-affinity),
//!   schedulers (FIFO, static, deadline-aware dynamic, pods), SLOs,
//!   admission control and abandonment; [`simulate`] runs a scenario.
//! - [`report`] — per-model p50/p95/p99, SLO attainment, goodput.
//! - [`flight`] — the bounded flight recorder: per-GPU batch timelines,
//!   scheduler instants, windowed counters (Chrome-trace export) and
//!   always-on request-lifecycle exemplars; [`simulate_recorded`] runs a
//!   scenario with the recorder attached.
//!
//! Determinism: one seed fixes the entire sample path. Runs are
//! byte-identical across processes and thread counts — the simulation
//! itself is single-threaded and all randomness flows from seeded
//! [`rand::rngs::StdRng`] streams.

#![deny(missing_docs)]

pub mod cluster;
pub mod des;
pub mod fleet;
pub mod flight;
pub mod kv;
pub mod profile;
pub mod report;
pub mod token;
pub mod workload;

pub use cluster::{
    simulate, simulate_recorded, simulate_stream, ArrivalSource, EnergyStats, HealthReport,
    ModelStats, PhaseStats, RequestRecord, RouterKind, ScenarioCfg, SchedulerKind, ServeStats,
    SimResult, SloSpec, LATENCY_SKETCH_EPS,
};
pub use fleet::{
    run_cluster, AutoscalerPolicy, ClusterCfg, ClusterResult, FleetCfg, FleetReport, FleetResult,
    RegionStream, SpotChurn, FLEET_SKETCH_EPS, PRICE_PER_KWH,
};
pub use flight::{
    BatchSpan, Exemplars, FlightCfg, FlightRecorder, SchedEvent, SchedKind, ServeWindow,
    CLUSTER_LANE, FLIGHT_SKETCH_EPS,
};
pub use des::{CalendarEventQueue, EventQueue, HeapEventQueue};
pub use kv::{KvAdmission, KvLedger, GIB};
pub use profile::{kv_bytes_per_token, ServiceCurve, ServiceProfile, TokenServiceCurve};
pub use report::{EnergyRow, EnergySection, ModelSlo, SloReport, TokenReport};
pub use token::{
    simulate_token, simulate_token_recorded, PhasePriority, TokenBatching, TokenPhaseStats,
    TokenScenarioCfg, TokenSimResult, TokenSlo, TokenStats,
};
pub use workload::{
    model_short_name, parse_model, ArrivalGen, ArrivalProcess, LengthDist, LengthSampler,
    RequestMix,
};
