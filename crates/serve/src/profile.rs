//! Profiler-grounded per-model service curves.
//!
//! A [`ServiceCurve`] answers "how long does one GPU take to serve a
//! batch of `b` requests of model M?" with numbers that come from the
//! repo's real roofline profiler, not hand-picked constants. For each
//! model the dominant *repeated* stages (the denoising loop, the decode
//! loop) are re-profiled at several batch sizes — preserving the paper's
//! batching regimes: memory-bandwidth-bound autoregressive decode
//! amortizes dramatically with batch, while the compute-bound diffusion
//! UNet gains little (Fig. 5's "low batch size" qualifier). The
//! once-per-request stages (text encoders, VAE decoders) scale linearly.

use mmg_models::blocks::{batched_decode_step_graph, unet_step_graph, windowed_encoder_graph};
use mmg_models::suite;
use mmg_models::ModelId;
use mmg_profiler::Profiler;

use crate::workload::RequestMix;

/// GPU seconds to serve a batch of same-model requests, as a function of
/// batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCurve {
    /// The model the curve describes.
    pub model: ModelId,
    /// `(batch, total seconds for the whole batch)` points, ascending by
    /// batch, starting at batch 1.
    pub points: Vec<(usize, f64)>,
    /// Throughput multiplier from Section-V pod co-scheduling (≥ 1;
    /// 1 = no pods). Applied by the pod scheduler, not baked into the
    /// points.
    pub pod_factor: f64,
}

impl ServiceCurve {
    /// A curve from measured points.
    ///
    /// # Panics
    ///
    /// Panics unless the points start at batch 1, ascend strictly in
    /// batch, and carry positive non-decreasing total times.
    #[must_use]
    pub fn new(model: ModelId, points: Vec<(usize, f64)>) -> Self {
        assert!(!points.is_empty(), "{model}: service curve needs points");
        assert_eq!(points[0].0, 1, "{model}: curve must start at batch 1");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "{model}: batches must ascend");
            assert!(w[1].1 >= w[0].1, "{model}: batch time cannot shrink");
        }
        assert!(points[0].1 > 0.0, "{model}: service time must be positive");
        ServiceCurve { model, points, pod_factor: 1.0 }
    }

    /// A batching-free curve: a batch of `b` takes `b × service_s`
    /// (sequential service — the classical M/D/1 assumption).
    #[must_use]
    pub fn constant(model: ModelId, service_s: f64) -> Self {
        assert!(service_s > 0.0, "service time must be positive");
        ServiceCurve { model, points: vec![(1, service_s)], pod_factor: 1.0 }
    }

    /// The same curve with a pod co-scheduling factor attached.
    #[must_use]
    pub fn with_pod_factor(mut self, pod_factor: f64) -> Self {
        assert!(pod_factor >= 1.0, "pod factor must be >= 1");
        self.pod_factor = pod_factor;
        self
    }

    /// Seconds one GPU needs for a batch of `b` requests: linear
    /// interpolation between measured points, linear extrapolation past
    /// the last point at its marginal per-request slope (a single-point
    /// curve extrapolates at the batch-1 cost, i.e. no batching benefit).
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn batch_s(&self, b: usize) -> f64 {
        assert!(b > 0, "batch must be positive");
        let pts = &self.points;
        if let Some(&(_, t)) = pts.iter().find(|(pb, _)| *pb == b) {
            return t;
        }
        let last = pts[pts.len() - 1];
        if b > last.0 {
            let slope = if pts.len() >= 2 {
                let prev = pts[pts.len() - 2];
                (last.1 - prev.1) / (last.0 - prev.0) as f64
            } else {
                last.1
            };
            return last.1 + slope * (b - last.0) as f64;
        }
        // b below the last point and not measured: interpolate within the
        // bracketing segment (b > 1 here since batch 1 is always a point).
        let hi = pts.iter().position(|(pb, _)| *pb > b).expect("bracketing point");
        let (b0, t0) = pts[hi - 1];
        let (b1, t1) = pts[hi];
        let frac = (b - b0) as f64 / (b1 - b0) as f64;
        t0 + frac * (t1 - t0)
    }

    /// Per-request seconds at batch `b`.
    #[must_use]
    pub fn per_item_s(&self, b: usize) -> f64 {
        self.batch_s(b) / b as f64
    }

    /// Batch-1 (unbatched) service seconds.
    #[must_use]
    pub fn base_s(&self) -> f64 {
        self.points[0].1
    }
}

/// The per-model service curves of a serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceProfile {
    /// One curve per model in the scenario mix.
    pub curves: Vec<ServiceCurve>,
}

impl ServiceProfile {
    /// A profile from explicit curves.
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicate-model curve set.
    #[must_use]
    pub fn new(curves: Vec<ServiceCurve>) -> Self {
        assert!(!curves.is_empty(), "service profile needs curves");
        for (i, c) in curves.iter().enumerate() {
            assert!(
                curves[..i].iter().all(|o| o.model != c.model),
                "duplicate curve for {}",
                c.model
            );
        }
        ServiceProfile { curves }
    }

    /// Builds curves for `models` by querying `profiler` at each batch
    /// size in `batches`.
    ///
    /// The decomposition per model: profile the full batch-1 pipeline
    /// once, re-profile the dominant repeated ("hot") stages at batch
    /// `b`, and charge the remaining once-per-request stages linearly —
    /// `batch_s(b) = (pipe₁ − hot₁)·b + hot_b`. For the parallel-decoding
    /// transformers the batched stage uses windowed attention with the
    /// window set to one request's token count, which models a batch
    /// of independent requests exactly (no cross-request attention).
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty (batch 1 is added automatically when
    /// absent).
    #[must_use]
    pub fn from_profiler(profiler: &Profiler, models: &[ModelId], batches: &[usize]) -> Self {
        assert!(!batches.is_empty(), "need at least one batch size");
        let mut batches: Vec<usize> = batches.to_vec();
        if !batches.contains(&1) {
            batches.push(1);
        }
        batches.sort_unstable();
        batches.dedup();

        let curves = models
            .iter()
            .map(|&model| {
                let pipe1 = suite::build(model).profile(profiler).total_time_s();
                let hot1 = hot_stage_s(profiler, model, 1);
                let overhead_s = (pipe1 - hot1).max(0.0);
                let points = batches
                    .iter()
                    .map(|&b| (b, overhead_s * b as f64 + hot_stage_s(profiler, model, b)))
                    .collect();
                ServiceCurve::new(model, points)
            })
            .collect();
        ServiceProfile::new(curves)
    }

    /// The curve for one model.
    #[must_use]
    pub fn curve(&self, model: ModelId) -> Option<&ServiceCurve> {
        self.curves.iter().find(|c| c.model == model)
    }

    /// Mix-weighted mean batch-1 service seconds — the per-request GPU
    /// cost an unbatched cluster pays, used to translate a target
    /// utilization into an offered arrival rate.
    ///
    /// # Panics
    ///
    /// Panics if the mix references a model without a curve.
    #[must_use]
    pub fn mean_base_s(&self, mix: &RequestMix) -> f64 {
        mix.entries()
            .iter()
            .map(|&(model, _)| {
                let c = self
                    .curve(model)
                    .unwrap_or_else(|| panic!("no service curve for {model}"));
                mix.share(model) * c.base_s()
            })
            .sum()
    }

    /// Attaches pod factors (`(model, factor)`) to the matching curves.
    #[must_use]
    pub fn with_pod_factors(mut self, factors: &[(ModelId, f64)]) -> Self {
        for c in &mut self.curves {
            if let Some(&(_, f)) = factors.iter().find(|(m, _)| *m == c.model) {
                c.pod_factor = f.max(1.0);
            }
        }
        self
    }
}

/// Seconds the dominant repeated stages of `model` take for a batch of
/// `b` requests, via the profiler.
fn hot_stage_s(profiler: &Profiler, model: ModelId, b: usize) -> f64 {
    let t = |graph| profiler.profile(&graph).total_time_s();
    match model {
        ModelId::StableDiffusion => {
            let cfg = suite::stable_diffusion::StableDiffusionConfig::default();
            cfg.steps as f64 * t(unet_step_graph(&cfg.unet(), cfg.latent_res(), b))
        }
        ModelId::ProdImage => {
            let cfg = suite::prod_image::ProdImageConfig::default();
            cfg.steps as f64 * t(unet_step_graph(&cfg.unet(), cfg.latent_res(), b))
        }
        ModelId::Imagen => {
            let cfg = suite::imagen::ImagenConfig::default();
            cfg.base_steps as f64 * t(unet_step_graph(&cfg.base_unet(), 64, b))
                + cfg.sr1_steps as f64 * t(unet_step_graph(&cfg.sr1_unet(), 256, b))
                + cfg.sr2_steps as f64 * t(unet_step_graph(&cfg.sr2_unet(), 1024, b))
        }
        ModelId::MakeAVideo => {
            // The UNet's third axis is the frame count; a batch of b videos
            // is b×frames independent frames.
            let cfg = suite::make_a_video::MakeAVideoConfig::default();
            cfg.base_steps as f64
                * t(unet_step_graph(&cfg.base_unet(), cfg.base_res, cfg.frames * b))
                + cfg.sr_steps as f64
                    * t(unet_step_graph(&cfg.sr_unet(), cfg.sr_res, cfg.frames * b))
        }
        ModelId::Parti => {
            let cfg = suite::parti::PartiConfig::default();
            let total = cfg.image_grid * cfg.image_grid;
            // Mid-generation KV length stands for the linear ramp.
            total as f64 * t(batched_decode_step_graph(&cfg.decoder, total / 2, b))
        }
        ModelId::Llama2 => {
            let cfg = suite::llama::Llama2Config::default();
            let kv = cfg.prompt_len + cfg.gen_tokens / 2;
            cfg.gen_tokens as f64 * t(batched_decode_step_graph(&cfg.transformer, kv, b))
        }
        ModelId::Muse => {
            // Window = one request's token count ⇒ b independent requests,
            // no cross-request attention.
            let cfg = suite::muse::MuseConfig::default();
            let base_tokens = cfg.base_grid * cfg.base_grid;
            let sr_tokens = cfg.sr_grid * cfg.sr_grid;
            cfg.base_steps as f64
                * t(windowed_encoder_graph(&cfg.base, base_tokens * b, base_tokens))
                + cfg.sr_steps as f64
                    * t(windowed_encoder_graph(&cfg.sr, sr_tokens * b, cfg.sr_window))
        }
        ModelId::Phenaki => {
            let cfg = suite::phenaki::PhenakiConfig::default();
            let tokens = cfg.video_tokens();
            cfg.maskgit_steps as f64
                * t(windowed_encoder_graph(&cfg.maskgit, tokens * b, tokens))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttnImpl;
    use mmg_gpu::DeviceSpec;

    fn profiler() -> Profiler {
        Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash)
    }

    #[test]
    fn curves_cover_all_models_and_ascend() {
        let p = ServiceProfile::from_profiler(&profiler(), &ModelId::ALL, &[1, 4, 16]);
        assert_eq!(p.curves.len(), ModelId::ALL.len());
        for c in &p.curves {
            assert_eq!(c.points.len(), 3);
            assert!(c.base_s() > 1e-4, "{}: implausibly fast", c.model);
            for w in c.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: batch time shrank", c.model);
            }
        }
    }

    #[test]
    fn decode_batches_better_than_diffusion() {
        // Fig. 5's regimes must survive into the serving curves: batching
        // 16 Parti requests costs far less than 16× batch-1, while the
        // compute-bound SD UNet sees only modest amortization.
        let p = ServiceProfile::from_profiler(
            &profiler(),
            &[ModelId::StableDiffusion, ModelId::Parti],
            &[1, 4, 16],
        );
        let sd = p.curve(ModelId::StableDiffusion).unwrap();
        let parti = p.curve(ModelId::Parti).unwrap();
        let sd_amort = sd.base_s() / sd.per_item_s(16);
        let parti_amort = parti.base_s() / parti.per_item_s(16);
        assert!(parti_amort > 4.0 * sd_amort, "parti {parti_amort} vs sd {sd_amort}");
        assert!(sd_amort >= 1.0, "batching cannot hurt: {sd_amort}");
    }

    #[test]
    fn hbm_bandwidth_shifts_serving_latency() {
        // The acceptance-criteria test: service latencies come from the
        // device roofline. Halving HBM bandwidth must slow the
        // memory-bound decode curve, batch-1 latency included.
        let fast = profiler();
        let mut slow_spec = DeviceSpec::a100_80gb();
        slow_spec.hbm_bandwidth_gbs /= 2.0;
        let slow = Profiler::new(slow_spec, AttnImpl::Flash);
        let models = [ModelId::Parti, ModelId::StableDiffusion];
        let pf = ServiceProfile::from_profiler(&fast, &models, &[1, 8]);
        let ps = ServiceProfile::from_profiler(&slow, &models, &[1, 8]);
        for m in models {
            let f = pf.curve(m).unwrap();
            let s = ps.curve(m).unwrap();
            assert!(
                s.base_s() > f.base_s() * 1.05,
                "{m}: halving HBM bandwidth should slow serving ({} vs {})",
                s.base_s(),
                f.base_s()
            );
        }
    }

    #[test]
    fn interpolation_and_extrapolation() {
        let c = ServiceCurve::new(ModelId::StableDiffusion, vec![(1, 1.0), (3, 2.0), (5, 2.5)]);
        assert_eq!(c.batch_s(3), 2.0);
        assert!((c.batch_s(2) - 1.5).abs() < 1e-12);
        assert!((c.batch_s(4) - 2.25).abs() < 1e-12);
        // Past the last point: marginal slope of the last segment.
        assert!((c.batch_s(7) - 3.0).abs() < 1e-12);
        // Constant curve: no batching benefit.
        let k = ServiceCurve::constant(ModelId::Parti, 0.5);
        assert!((k.batch_s(4) - 2.0).abs() < 1e-12);
        assert!((k.per_item_s(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_base_weights_by_mix_share() {
        let p = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 1.0),
            ServiceCurve::constant(ModelId::Parti, 3.0),
        ]);
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::Parti, 1.0),
        ]);
        assert!((p.mean_base_s(&mix) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pod_factors_attach() {
        let p = ServiceProfile::new(vec![ServiceCurve::constant(ModelId::StableDiffusion, 1.0)])
            .with_pod_factors(&[(ModelId::StableDiffusion, 1.4), (ModelId::Parti, 2.0)]);
        assert!((p.curve(ModelId::StableDiffusion).unwrap().pod_factor - 1.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "start at batch 1")]
    fn curve_requires_batch_one() {
        let _ = ServiceCurve::new(ModelId::Muse, vec![(2, 1.0)]);
    }
}
