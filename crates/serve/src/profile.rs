//! Profiler-grounded per-model service curves.
//!
//! A [`ServiceCurve`] answers "how long does one GPU take to serve a
//! batch of `b` requests of model M?" with numbers that come from the
//! repo's real roofline profiler, not hand-picked constants. For each
//! model the dominant *repeated* stages (the denoising loop, the decode
//! loop) are re-profiled at several batch sizes — preserving the paper's
//! batching regimes: memory-bandwidth-bound autoregressive decode
//! amortizes dramatically with batch, while the compute-bound diffusion
//! UNet gains little (Fig. 5's "low batch size" qualifier). The
//! once-per-request stages (text encoders, VAE decoders) scale linearly.

use mmg_models::blocks::{
    batched_decode_step_graph, encoder_graph, prefill_graph, unet_step_graph,
    windowed_encoder_graph,
};
use mmg_models::suite;
use mmg_models::ModelId;
use mmg_profiler::Profiler;

use crate::workload::RequestMix;

/// GPU seconds to serve a batch of same-model requests, as a function of
/// batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCurve {
    /// The model the curve describes.
    pub model: ModelId,
    /// `(batch, total seconds for the whole batch)` points, ascending by
    /// batch, starting at batch 1.
    pub points: Vec<(usize, f64)>,
    /// Throughput multiplier from Section-V pod co-scheduling (≥ 1;
    /// 1 = no pods). Applied by the pod scheduler, not baked into the
    /// points.
    pub pod_factor: f64,
    /// Mean modeled board draw (watts) while a GPU serves this model,
    /// from the profiler's per-kernel power model. 0 = unmetered (the
    /// serving energy layer stays off).
    pub draw_w: f64,
}

impl ServiceCurve {
    /// A curve from measured points.
    ///
    /// # Panics
    ///
    /// Panics unless the points start at batch 1, ascend strictly in
    /// batch, and carry positive non-decreasing total times.
    #[must_use]
    pub fn new(model: ModelId, points: Vec<(usize, f64)>) -> Self {
        assert!(!points.is_empty(), "{model}: service curve needs points");
        assert_eq!(points[0].0, 1, "{model}: curve must start at batch 1");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "{model}: batches must ascend");
            assert!(w[1].1 >= w[0].1, "{model}: batch time cannot shrink");
        }
        assert!(points[0].1 > 0.0, "{model}: service time must be positive");
        ServiceCurve { model, points, pod_factor: 1.0, draw_w: 0.0 }
    }

    /// A batching-free curve: a batch of `b` takes `b × service_s`
    /// (sequential service — the classical M/D/1 assumption).
    #[must_use]
    pub fn constant(model: ModelId, service_s: f64) -> Self {
        assert!(service_s > 0.0, "service time must be positive");
        ServiceCurve { model, points: vec![(1, service_s)], pod_factor: 1.0, draw_w: 0.0 }
    }

    /// The same curve with a pod co-scheduling factor attached.
    #[must_use]
    pub fn with_pod_factor(mut self, pod_factor: f64) -> Self {
        assert!(pod_factor >= 1.0, "pod factor must be >= 1");
        self.pod_factor = pod_factor;
        self
    }

    /// The same curve with a serving draw attached (watts while a GPU
    /// runs this model's batches).
    #[must_use]
    pub fn with_draw_w(mut self, draw_w: f64) -> Self {
        assert!(draw_w >= 0.0, "draw must be non-negative");
        self.draw_w = draw_w;
        self
    }

    /// Seconds one GPU needs for a batch of `b` requests.
    ///
    /// # Interpolation and extrapolation rule
    ///
    /// - **Exact knot**: a measured batch size returns its measured time
    ///   bit-for-bit (no float round-trip through the interpolator).
    /// - **Between knots**: linear interpolation within the bracketing
    ///   segment.
    /// - **Below the first knot**: impossible by construction — every
    ///   curve starts at batch 1 (enforced by [`ServiceCurve::new`]) and
    ///   `b ≥ 1`, so the first knot is always reachable exactly.
    /// - **Above the last knot**: linear extrapolation at the marginal
    ///   per-request slope of the *last measured segment* — batching
    ///   amortization is assumed to have flattened out past the largest
    ///   profiled batch. A single-point curve extrapolates at the
    ///   batch-1 cost (slope = `base_s`), i.e. no batching benefit.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn batch_s(&self, b: usize) -> f64 {
        assert!(b > 0, "batch must be positive");
        let pts = &self.points;
        if let Some(&(_, t)) = pts.iter().find(|(pb, _)| *pb == b) {
            return t;
        }
        let last = pts[pts.len() - 1];
        if b > last.0 {
            let slope = if pts.len() >= 2 {
                let prev = pts[pts.len() - 2];
                (last.1 - prev.1) / (last.0 - prev.0) as f64
            } else {
                last.1
            };
            return last.1 + slope * (b - last.0) as f64;
        }
        // b below the last point and not measured: interpolate within the
        // bracketing segment (b > 1 here since batch 1 is always a point).
        let hi = pts.iter().position(|(pb, _)| *pb > b).expect("bracketing point");
        let (b0, t0) = pts[hi - 1];
        let (b1, t1) = pts[hi];
        let frac = (b - b0) as f64 / (b1 - b0) as f64;
        t0 + frac * (t1 - t0)
    }

    /// Per-request seconds at batch `b`.
    #[must_use]
    pub fn per_item_s(&self, b: usize) -> f64 {
        self.batch_s(b) / b as f64
    }

    /// Batch-1 (unbatched) service seconds.
    #[must_use]
    pub fn base_s(&self) -> f64 {
        self.points[0].1
    }
}

/// The per-model service curves of a serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceProfile {
    /// One curve per model in the scenario mix.
    pub curves: Vec<ServiceCurve>,
    /// Board draw (watts) of an idle GPU in the cluster; 0 = unmetered.
    /// Together with the per-curve `draw_w` this switches the serving
    /// energy layer on ([`ServiceProfile::has_power`]).
    pub idle_w: f64,
}

impl ServiceProfile {
    /// A profile from explicit curves.
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicate-model curve set.
    #[must_use]
    pub fn new(curves: Vec<ServiceCurve>) -> Self {
        assert!(!curves.is_empty(), "service profile needs curves");
        for (i, c) in curves.iter().enumerate() {
            assert!(
                curves[..i].iter().all(|o| o.model != c.model),
                "duplicate curve for {}",
                c.model
            );
        }
        ServiceProfile { curves, idle_w: 0.0 }
    }

    /// Attaches the cluster's idle draw (watts), enabling the serving
    /// energy layer.
    #[must_use]
    pub fn with_idle_w(mut self, idle_w: f64) -> Self {
        assert!(idle_w >= 0.0, "idle draw must be non-negative");
        self.idle_w = idle_w;
        self
    }

    /// Whether the energy layer is metered: an idle draw is attached
    /// and every curve carries a serving draw.
    #[must_use]
    pub fn has_power(&self) -> bool {
        self.idle_w > 0.0 && self.curves.iter().all(|c| c.draw_w > 0.0)
    }

    /// Builds curves for `models` by querying `profiler` at each batch
    /// size in `batches`.
    ///
    /// The decomposition per model: profile the full batch-1 pipeline
    /// once, re-profile the dominant repeated ("hot") stages at batch
    /// `b`, and charge the remaining once-per-request stages linearly —
    /// `batch_s(b) = (pipe₁ − hot₁)·b + hot_b`. For the parallel-decoding
    /// transformers the batched stage uses windowed attention with the
    /// window set to one request's token count, which models a batch
    /// of independent requests exactly (no cross-request attention).
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty (batch 1 is added automatically when
    /// absent).
    #[must_use]
    pub fn from_profiler(profiler: &Profiler, models: &[ModelId], batches: &[usize]) -> Self {
        ServiceProfile::from_profiler_sampled(profiler, models, batches, None)
    }

    /// Like [`ServiceProfile::from_profiler`], with the diffusion
    /// sampler's denoising steps capped at `sampler_steps` (distilled
    /// few-step sampling). Autoregressive and MaskGIT models are
    /// unaffected — their iteration counts are structural.
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty (batch 1 is added automatically when
    /// absent).
    #[must_use]
    pub fn from_profiler_sampled(
        profiler: &Profiler,
        models: &[ModelId],
        batches: &[usize],
        sampler_steps: Option<usize>,
    ) -> Self {
        assert!(!batches.is_empty(), "need at least one batch size");
        let mut batches: Vec<usize> = batches.to_vec();
        if !batches.contains(&1) {
            batches.push(1);
        }
        batches.sort_unstable();
        batches.dedup();

        let curves = models
            .iter()
            .map(|&model| {
                let mut pipeline = suite::build(model);
                if let Some(steps) = sampler_steps {
                    pipeline = pipeline.with_sampler_steps(steps);
                }
                let timeline = pipeline.profile(profiler);
                let pipe1 = timeline.total_time_s();
                let hot1 = hot_stage_s(profiler, model, 1, sampler_steps);
                let overhead_s = (pipe1 - hot1).max(0.0);
                let points = batches
                    .iter()
                    .map(|&b| {
                        (b, overhead_s * b as f64 + hot_stage_s(profiler, model, b, sampler_steps))
                    })
                    .collect();
                // The batch-1 pipeline's mean draw stands for the draw a
                // GPU sustains while serving this model's batches.
                ServiceCurve::new(model, points).with_draw_w(timeline.mean_power_w())
            })
            .collect();
        ServiceProfile::new(curves).with_idle_w(profiler.spec().idle_w)
    }

    /// The curve for one model.
    #[must_use]
    pub fn curve(&self, model: ModelId) -> Option<&ServiceCurve> {
        self.curves.iter().find(|c| c.model == model)
    }

    /// Mix-weighted mean batch-1 service seconds — the per-request GPU
    /// cost an unbatched cluster pays, used to translate a target
    /// utilization into an offered arrival rate.
    ///
    /// # Panics
    ///
    /// Panics if the mix references a model without a curve.
    #[must_use]
    pub fn mean_base_s(&self, mix: &RequestMix) -> f64 {
        mix.entries()
            .iter()
            .map(|&(model, _)| {
                let c = self
                    .curve(model)
                    .unwrap_or_else(|| panic!("no service curve for {model}"));
                mix.share(model) * c.base_s()
            })
            .sum()
    }

    /// Attaches pod factors (`(model, factor)`) to the matching curves.
    #[must_use]
    pub fn with_pod_factors(mut self, factors: &[(ModelId, f64)]) -> Self {
        for c in &mut self.curves {
            if let Some(&(_, f)) = factors.iter().find(|(m, _)| *m == c.model) {
                c.pod_factor = f.max(1.0);
            }
        }
        self
    }
}

/// Seconds the dominant repeated stages of `model` take for a batch of
/// `b` requests, via the profiler. `sampler_steps` caps the denoising
/// step counts of diffusion models (mirroring
/// [`mmg_models::Pipeline::with_sampler_steps`]); other loops are
/// structural and ignore it.
fn hot_stage_s(
    profiler: &Profiler,
    model: ModelId,
    b: usize,
    sampler_steps: Option<usize>,
) -> f64 {
    let t = |graph| profiler.profile(&graph).total_time_s();
    // AR decode and MaskGIT resampling change shape every iteration, so
    // they cannot stay inside a captured graph; only the static-shape
    // denoising loops keep any graph-capture benefit.
    let uncaptured = profiler.without_graph_capture();
    let t_dyn = |graph| uncaptured.profile(&graph).total_time_s();
    let cap = |steps: usize| sampler_steps.map_or(steps, |s| steps.min(s.max(1)));
    match model {
        ModelId::StableDiffusion => {
            let cfg = suite::stable_diffusion::StableDiffusionConfig::default();
            cap(cfg.steps) as f64 * t(unet_step_graph(&cfg.unet(), cfg.latent_res(), b))
        }
        ModelId::ProdImage => {
            let cfg = suite::prod_image::ProdImageConfig::default();
            cap(cfg.steps) as f64 * t(unet_step_graph(&cfg.unet(), cfg.latent_res(), b))
        }
        ModelId::Imagen => {
            let cfg = suite::imagen::ImagenConfig::default();
            cap(cfg.base_steps) as f64 * t(unet_step_graph(&cfg.base_unet(), 64, b))
                + cap(cfg.sr1_steps) as f64 * t(unet_step_graph(&cfg.sr1_unet(), 256, b))
                + cap(cfg.sr2_steps) as f64 * t(unet_step_graph(&cfg.sr2_unet(), 1024, b))
        }
        ModelId::MakeAVideo => {
            // The UNet's third axis is the frame count; a batch of b videos
            // is b×frames independent frames.
            let cfg = suite::make_a_video::MakeAVideoConfig::default();
            cap(cfg.base_steps) as f64
                * t(unet_step_graph(&cfg.base_unet(), cfg.base_res, cfg.frames * b))
                + cap(cfg.sr_steps) as f64
                    * t(unet_step_graph(&cfg.sr_unet(), cfg.sr_res, cfg.frames * b))
        }
        ModelId::Parti => {
            let cfg = suite::parti::PartiConfig::default();
            let total = cfg.image_grid * cfg.image_grid;
            // Mid-generation KV length stands for the linear ramp.
            total as f64 * t_dyn(batched_decode_step_graph(&cfg.decoder, total / 2, b))
        }
        ModelId::Llama2 => {
            let cfg = suite::llama::Llama2Config::default();
            let kv = cfg.prompt_len + cfg.gen_tokens / 2;
            cfg.gen_tokens as f64 * t_dyn(batched_decode_step_graph(&cfg.transformer, kv, b))
        }
        ModelId::Muse => {
            // Window = one request's token count ⇒ b independent requests,
            // no cross-request attention.
            let cfg = suite::muse::MuseConfig::default();
            let base_tokens = cfg.base_grid * cfg.base_grid;
            let sr_tokens = cfg.sr_grid * cfg.sr_grid;
            cfg.base_steps as f64
                * t_dyn(windowed_encoder_graph(&cfg.base, base_tokens * b, base_tokens))
                + cfg.sr_steps as f64
                    * t_dyn(windowed_encoder_graph(&cfg.sr, sr_tokens * b, cfg.sr_window))
        }
        ModelId::Phenaki => {
            let cfg = suite::phenaki::PhenakiConfig::default();
            let tokens = cfg.video_tokens();
            cfg.maskgit_steps as f64
                * t_dyn(windowed_encoder_graph(&cfg.maskgit, tokens * b, tokens))
        }
    }
}

/// Per-iteration cost surface for token-granularity autoregressive
/// serving, queried from the real profiler.
///
/// Where [`ServiceCurve`] prices a *whole request* at batch `b`, this
/// curve prices one **decode iteration** of a running batch — the unit
/// the continuous-batching engine advances by — as a function of both
/// the batch size and the (mean) KV context length, plus a cumulative
/// prefill-cost curve for chunked prompt processing. Three of the
/// paper's models decode token-by-token and are supported:
///
/// - **LLaMA** — classic AR text decode: one token per iteration per
///   sequence, causal prefill over the prompt, per-token KV append.
/// - **Parti** — AR image-token decode (1024 tokens): the "prompt" is
///   the text encoding (cross-attention context), charged once via the
///   prefill curve; image-token KV grows during decode.
/// - **Muse** — *parallel* (MaskGIT) decode: each iteration re-scores
///   the whole 256-token base grid and commits `tokens_per_step`
///   tokens, so the step cost is flat in context length and no prompt
///   prefill exists (conditioning rides the cross-attention inside the
///   step cost). Only the base stage is modeled; the super-resolution
///   stage is outside the token loop.
///
/// Interpolation follows the [`ServiceCurve::batch_s`] rule on the
/// batch axis. On the context axis, queries **below the first knot
/// clamp to it** (short-context decode is weight-read bound, flat in
/// context) and queries above the last knot extrapolate at the last
/// segment's marginal slope (attention KV traffic grows linearly).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenServiceCurve {
    /// The model the curve describes.
    pub model: ModelId,
    /// Batch-size knots, ascending, starting at 1.
    pub batch_knots: Vec<usize>,
    /// Context-length knots (tokens of resident KV), ascending.
    pub ctx_knots: Vec<usize>,
    /// `step_s[ci][bi]`: seconds for one decode iteration of
    /// `batch_knots[bi]` sequences, each holding `ctx_knots[ci]` tokens
    /// of KV context.
    pub step_s: Vec<Vec<f64>>,
    /// Cumulative prefill cost: `(prompt tokens, seconds to prefill
    /// them from token 0)`, ascending, with an implicit `(0, 0)` knot.
    /// Empty for models with no prompt phase (Muse).
    pub prefill_s: Vec<(usize, f64)>,
    /// Output tokens committed per iteration per sequence (1 = strict
    /// AR; >1 = parallel MaskGIT decode).
    pub tokens_per_step: usize,
    /// `Some(n)` when the model always emits exactly `n` tokens (image
    /// grids); `None` when the output length is workload-sampled.
    pub fixed_output_tokens: Option<usize>,
    /// KV-cache bytes per resident token per sequence (fp16 K+V across
    /// all layers).
    pub kv_bytes_per_token: u64,
    /// FP16 weight bytes resident on every GPU serving this model.
    pub weight_bytes: u64,
}

/// Piecewise-linear read of ascending `(x, y)` knots at `x`: clamp
/// below the first knot, marginal-slope extrapolation above the last
/// (flat for a single knot), linear interpolation between.
fn interp_ascending(knots: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(!knots.is_empty());
    let first = knots[0];
    if x <= first.0 {
        return first.1;
    }
    let last = knots[knots.len() - 1];
    if x >= last.0 {
        if knots.len() < 2 {
            return last.1;
        }
        let prev = knots[knots.len() - 2];
        let slope = (last.1 - prev.1) / (last.0 - prev.0);
        return last.1 + slope * (x - last.0);
    }
    let hi = knots.iter().position(|&(kx, _)| kx > x).expect("bracketing knot");
    let (x0, y0) = knots[hi - 1];
    let (x1, y1) = knots[hi];
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

impl TokenServiceCurve {
    /// Whether `model` decodes token-by-token and is supported by the
    /// token engine.
    #[must_use]
    pub fn supports(model: ModelId) -> bool {
        matches!(model, ModelId::Llama2 | ModelId::Parti | ModelId::Muse)
    }

    /// Builds the curve for an autoregressive suite model by profiling
    /// its real decode-step lowering over a batch × context grid.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not autoregressive (see
    /// [`TokenServiceCurve::supports`]).
    #[must_use]
    pub fn from_profiler(profiler: &Profiler, model: ModelId) -> Self {
        let t = |graph| profiler.profile(&graph).total_time_s();
        let batch_knots: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
        let weight_bytes = 2 * suite::build(model).param_count();
        match model {
            ModelId::Llama2 => {
                let cfg = suite::llama::Llama2Config::default();
                let ctx_knots: Vec<usize> = vec![256, 1024, 4096, 8192];
                let step_s = ctx_knots
                    .iter()
                    .map(|&kv| {
                        batch_knots
                            .iter()
                            .map(|&b| t(batched_decode_step_graph(&cfg.transformer, kv, b)))
                            .collect()
                    })
                    .collect();
                let prefill_s = [128usize, 512, 2048, 4096]
                    .iter()
                    .map(|&len| (len, t(prefill_graph(&cfg.transformer, len))))
                    .collect();
                TokenServiceCurve {
                    model,
                    batch_knots,
                    ctx_knots,
                    step_s,
                    prefill_s,
                    tokens_per_step: 1,
                    fixed_output_tokens: None,
                    kv_bytes_per_token: kv_bytes_per_token(&cfg.transformer),
                    weight_bytes,
                }
            }
            ModelId::Parti => {
                let cfg = suite::parti::PartiConfig::default();
                let total = cfg.image_grid * cfg.image_grid;
                let ctx_knots: Vec<usize> = vec![64, 256, 512, total];
                let step_s = ctx_knots
                    .iter()
                    .map(|&kv| {
                        batch_knots
                            .iter()
                            .map(|&b| t(batched_decode_step_graph(&cfg.decoder, kv, b)))
                            .collect()
                    })
                    .collect();
                // The "prompt" is the text encoding: one encoder pass,
                // linear in prompt tokens through the cumulative curve.
                let prefill_s = vec![(cfg.text_len, t(encoder_graph(&cfg.encoder, cfg.text_len)))];
                TokenServiceCurve {
                    model,
                    batch_knots,
                    ctx_knots,
                    step_s,
                    prefill_s,
                    tokens_per_step: 1,
                    fixed_output_tokens: Some(total),
                    kv_bytes_per_token: kv_bytes_per_token(&cfg.decoder),
                    weight_bytes,
                }
            }
            ModelId::Muse => {
                let cfg = suite::muse::MuseConfig::default();
                let base_tokens = cfg.base_grid * cfg.base_grid;
                let step_s = vec![batch_knots
                    .iter()
                    .map(|&b| t(windowed_encoder_graph(&cfg.base, base_tokens * b, base_tokens)))
                    .collect()];
                TokenServiceCurve {
                    model,
                    batch_knots,
                    ctx_knots: vec![base_tokens],
                    step_s,
                    prefill_s: Vec::new(),
                    tokens_per_step: base_tokens.div_ceil(cfg.base_steps),
                    fixed_output_tokens: Some(base_tokens),
                    kv_bytes_per_token: kv_bytes_per_token(&cfg.base),
                    weight_bytes,
                }
            }
            other => panic!("{other} is not an autoregressive model; token serving needs one of llama | parti | muse"),
        }
    }

    /// Seconds for one decode iteration of `batch` sequences whose mean
    /// resident context is `ctx_tokens`: bilinear read of the profiled
    /// grid (batch axis per the [`ServiceCurve::batch_s`] rule, context
    /// axis clamped below / marginal-slope extrapolated above).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn step_s(&self, batch: usize, ctx_tokens: f64) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let per_ctx: Vec<(f64, f64)> = self
            .ctx_knots
            .iter()
            .zip(&self.step_s)
            .map(|(&ctx, row)| (ctx as f64, interp_batch(&self.batch_knots, row, batch)))
            .collect();
        interp_ascending(&per_ctx, ctx_tokens)
    }

    /// Cumulative seconds to prefill a prompt's first `tokens` tokens
    /// at batch 1 (piecewise linear through the profiled lengths,
    /// implicit origin knot; zero for models with no prompt phase).
    #[must_use]
    pub fn prefill_cum_s(&self, tokens: f64) -> f64 {
        if self.prefill_s.is_empty() || tokens <= 0.0 {
            return 0.0;
        }
        let mut knots: Vec<(f64, f64)> = Vec::with_capacity(self.prefill_s.len() + 1);
        knots.push((0.0, 0.0));
        knots.extend(self.prefill_s.iter().map(|&(n, s)| (n as f64, s)));
        interp_ascending(&knots, tokens)
    }

    /// Seconds to advance one sequence's prefill from token `from` to
    /// token `to` (a chunk), as the cumulative-curve difference.
    #[must_use]
    pub fn prefill_chunk_s(&self, from: usize, to: usize) -> f64 {
        (self.prefill_cum_s(to as f64) - self.prefill_cum_s(from as f64)).max(0.0)
    }

    /// Mean GPU-seconds one request costs at decode batch `cap` —
    /// prefill at batch 1 plus its share of every decode iteration it
    /// rides in. The anchor for translating a target utilization into
    /// an offered arrival rate.
    #[must_use]
    pub fn request_gpu_s(&self, prompt_tokens: f64, output_tokens: f64, cap: usize) -> f64 {
        let out = self.fixed_output_tokens.map_or(output_tokens, |n| n as f64);
        let iters = (out / self.tokens_per_step as f64).ceil();
        let ctx = prompt_tokens + out / 2.0;
        self.prefill_cum_s(prompt_tokens) + iters * self.step_s(cap, ctx) / cap as f64
    }
}

/// Batch-axis read of one context row, matching [`ServiceCurve::batch_s`]:
/// exact knots return the measured value bit-for-bit.
fn interp_batch(knots: &[usize], row: &[f64], b: usize) -> f64 {
    if let Some(i) = knots.iter().position(|&k| k == b) {
        return row[i];
    }
    let pts: Vec<(f64, f64)> = knots.iter().map(|&k| k as f64).zip(row.iter().copied()).collect();
    if knots.len() == 1 {
        // Single-knot batch axis: no batching benefit, scale linearly.
        return row[0] / knots[0] as f64 * b as f64;
    }
    interp_ascending(&pts, b as f64)
}

/// FP16 KV-cache bytes one resident token costs: K and V vectors of
/// `d_model` halves across every layer.
#[must_use]
pub fn kv_bytes_per_token(cfg: &mmg_models::TransformerConfig) -> u64 {
    (cfg.layers * 2 * cfg.d_model * 2) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttnImpl;
    use mmg_gpu::DeviceSpec;

    fn profiler() -> Profiler {
        Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash)
    }

    #[test]
    fn curves_cover_all_models_and_ascend() {
        let p = ServiceProfile::from_profiler(&profiler(), &ModelId::ALL, &[1, 4, 16]);
        assert_eq!(p.curves.len(), ModelId::ALL.len());
        for c in &p.curves {
            assert_eq!(c.points.len(), 3);
            assert!(c.base_s() > 1e-4, "{}: implausibly fast", c.model);
            for w in c.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: batch time shrank", c.model);
            }
        }
    }

    #[test]
    fn sampler_cap_shrinks_diffusion_curves_only() {
        let p = profiler();
        let models = [ModelId::StableDiffusion, ModelId::Parti];
        let full = ServiceProfile::from_profiler(&p, &models, &[1, 8]);
        let fast = ServiceProfile::from_profiler_sampled(&p, &models, &[1, 8], Some(4));
        let sd_full = full.curve(ModelId::StableDiffusion).unwrap().base_s();
        let sd_fast = fast.curve(ModelId::StableDiffusion).unwrap().base_s();
        // 50 steps → 4: the UNet loop dominates, so near-proportional.
        assert!(
            sd_full / sd_fast > 5.0,
            "distilled sampler speedup too small: {}",
            sd_full / sd_fast
        );
        // Autoregressive decode is structural; its curve is untouched.
        let parti_full = full.curve(ModelId::Parti).unwrap();
        let parti_fast = fast.curve(ModelId::Parti).unwrap();
        assert_eq!(parti_full.points, parti_fast.points);
    }

    #[test]
    fn decode_batches_better_than_diffusion() {
        // Fig. 5's regimes must survive into the serving curves: batching
        // 16 Parti requests costs far less than 16× batch-1, while the
        // compute-bound SD UNet sees only modest amortization.
        let p = ServiceProfile::from_profiler(
            &profiler(),
            &[ModelId::StableDiffusion, ModelId::Parti],
            &[1, 4, 16],
        );
        let sd = p.curve(ModelId::StableDiffusion).unwrap();
        let parti = p.curve(ModelId::Parti).unwrap();
        let sd_amort = sd.base_s() / sd.per_item_s(16);
        let parti_amort = parti.base_s() / parti.per_item_s(16);
        assert!(parti_amort > 4.0 * sd_amort, "parti {parti_amort} vs sd {sd_amort}");
        assert!(sd_amort >= 1.0, "batching cannot hurt: {sd_amort}");
    }

    #[test]
    fn hbm_bandwidth_shifts_serving_latency() {
        // The acceptance-criteria test: service latencies come from the
        // device roofline. Halving HBM bandwidth must slow the
        // memory-bound decode curve, batch-1 latency included.
        let fast = profiler();
        let mut slow_spec = DeviceSpec::a100_80gb();
        slow_spec.hbm_bandwidth_gbs /= 2.0;
        let slow = Profiler::new(slow_spec, AttnImpl::Flash);
        let models = [ModelId::Parti, ModelId::StableDiffusion];
        let pf = ServiceProfile::from_profiler(&fast, &models, &[1, 8]);
        let ps = ServiceProfile::from_profiler(&slow, &models, &[1, 8]);
        for m in models {
            let f = pf.curve(m).unwrap();
            let s = ps.curve(m).unwrap();
            assert!(
                s.base_s() > f.base_s() * 1.05,
                "{m}: halving HBM bandwidth should slow serving ({} vs {})",
                s.base_s(),
                f.base_s()
            );
        }
    }

    #[test]
    fn interpolation_and_extrapolation() {
        let c = ServiceCurve::new(ModelId::StableDiffusion, vec![(1, 1.0), (3, 2.0), (5, 2.5)]);
        assert_eq!(c.batch_s(3), 2.0);
        assert!((c.batch_s(2) - 1.5).abs() < 1e-12);
        assert!((c.batch_s(4) - 2.25).abs() < 1e-12);
        // Past the last point: marginal slope of the last segment.
        assert!((c.batch_s(7) - 3.0).abs() < 1e-12);
        // Constant curve: no batching benefit.
        let k = ServiceCurve::constant(ModelId::Parti, 0.5);
        assert!((k.batch_s(4) - 2.0).abs() < 1e-12);
        assert!((k.per_item_s(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_base_weights_by_mix_share() {
        let p = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 1.0),
            ServiceCurve::constant(ModelId::Parti, 3.0),
        ]);
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::Parti, 1.0),
        ]);
        assert!((p.mean_base_s(&mix) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pod_factors_attach() {
        let p = ServiceProfile::new(vec![ServiceCurve::constant(ModelId::StableDiffusion, 1.0)])
            .with_pod_factors(&[(ModelId::StableDiffusion, 1.4), (ModelId::Parti, 2.0)]);
        assert!((p.curve(ModelId::StableDiffusion).unwrap().pod_factor - 1.4).abs() < 1e-12);
    }

    #[test]
    fn profiler_profiles_carry_power() {
        let spec = DeviceSpec::a100_80gb();
        let p = ServiceProfile::from_profiler(
            &profiler(),
            &[ModelId::StableDiffusion, ModelId::Parti],
            &[1, 4],
        );
        assert!(p.has_power());
        assert_eq!(p.idle_w, spec.idle_w);
        for c in &p.curves {
            assert!(
                c.draw_w >= spec.idle_w && c.draw_w <= spec.tdp_w,
                "{}: draw {} outside the envelope",
                c.model,
                c.draw_w
            );
        }
        // Draws are model-dependent (different regime mixes), and both
        // sustain well above idle while serving.
        let sd = p.curve(ModelId::StableDiffusion).unwrap().draw_w;
        let parti = p.curve(ModelId::Parti).unwrap().draw_w;
        assert!((sd - parti).abs() > 1.0, "sd {sd} W vs parti {parti} W");
        assert!(sd > 2.0 * spec.idle_w && parti > 2.0 * spec.idle_w);
        // Hand-built constant profiles stay unmetered.
        let plain = ServiceProfile::new(vec![ServiceCurve::constant(ModelId::Parti, 0.5)]);
        assert!(!plain.has_power());
    }

    #[test]
    #[should_panic(expected = "start at batch 1")]
    fn curve_requires_batch_one() {
        let _ = ServiceCurve::new(ModelId::Muse, vec![(2, 1.0)]);
    }

    #[test]
    fn batch_s_boundary_knots() {
        // Satellite: interpolation boundary behavior, pinned. The first
        // knot is batch 1 by construction, so "below the first knot"
        // cannot happen — b = 1 is the exact-hit floor.
        let c = ServiceCurve::new(ModelId::Parti, vec![(1, 0.5), (4, 0.8), (16, 1.4)]);
        // Exact-knot hits return the measured values bit-for-bit.
        assert_eq!(c.batch_s(1).to_bits(), 0.5f64.to_bits());
        assert_eq!(c.batch_s(4).to_bits(), 0.8f64.to_bits());
        assert_eq!(c.batch_s(16).to_bits(), 1.4f64.to_bits());
        // Above the last knot: marginal slope of the last segment,
        // (1.4 - 0.8) / 12 = 0.05 per request.
        assert!((c.batch_s(20) - (1.4 + 0.05 * 4.0)).abs() < 1e-12);
        assert!((c.batch_s(17) - 1.45).abs() < 1e-12);
        // Single-point curve: extrapolates at the batch-1 cost.
        let k = ServiceCurve::constant(ModelId::Muse, 0.25);
        assert_eq!(k.batch_s(1).to_bits(), 0.25f64.to_bits());
        assert!((k.batch_s(9) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn token_curve_scales_with_batch_and_context() {
        let curve = TokenServiceCurve::from_profiler(&profiler(), ModelId::Llama2);
        // Exact grid hits return the profiled values bit-for-bit.
        assert_eq!(curve.step_s(1, 256.0).to_bits(), curve.step_s[0][0].to_bits());
        assert_eq!(
            curve.step_s(64, 8192.0).to_bits(),
            curve.step_s[curve.ctx_knots.len() - 1][curve.batch_knots.len() - 1].to_bits()
        );
        // Memory-bound decode amortizes: 32 sequences cost far less
        // than 32× one sequence per iteration.
        let b1 = curve.step_s(1, 1024.0);
        let b32 = curve.step_s(32, 1024.0);
        assert!(b32 < 8.0 * b1, "decode batching should amortize: {b32} vs {b1}");
        assert!(b32 > b1, "more sequences cannot be cheaper");
        // Longer context means more KV traffic per step.
        assert!(curve.step_s(8, 8192.0) > curve.step_s(8, 256.0));
        // Context below the first knot clamps to it; above the last
        // knot extrapolates beyond the last measured value.
        assert_eq!(curve.step_s(8, 1.0).to_bits(), curve.step_s(8, 256.0).to_bits());
        assert!(curve.step_s(8, 20_000.0) > curve.step_s(8, 8192.0));
        // Prefill is cumulative, monotone, and chunk-decomposable.
        let full = curve.prefill_cum_s(2048.0);
        assert!(full > 0.0);
        let split = curve.prefill_chunk_s(0, 512)
            + curve.prefill_chunk_s(512, 1024)
            + curve.prefill_chunk_s(1024, 2048);
        assert!((full - split).abs() < 1e-12 * full.max(1.0));
        assert!(curve.kv_bytes_per_token > 0 && curve.weight_bytes > 0);
    }

    #[test]
    fn token_curve_models_parallel_and_ar_decoders() {
        let p = profiler();
        let muse = TokenServiceCurve::from_profiler(&p, ModelId::Muse);
        // MaskGIT commits several tokens per iteration and has no
        // prompt phase; its step cost is flat in context.
        assert!(muse.tokens_per_step > 1);
        assert_eq!(muse.prefill_cum_s(100.0), 0.0);
        assert_eq!(muse.step_s(4, 10.0).to_bits(), muse.step_s(4, 10_000.0).to_bits());
        assert_eq!(muse.fixed_output_tokens, Some(256));
        let parti = TokenServiceCurve::from_profiler(&p, ModelId::Parti);
        assert_eq!(parti.tokens_per_step, 1);
        assert_eq!(parti.fixed_output_tokens, Some(1024));
        assert!(parti.prefill_cum_s(128.0) > 0.0, "text encoding must cost time");
        assert!(TokenServiceCurve::supports(ModelId::Llama2));
        assert!(!TokenServiceCurve::supports(ModelId::StableDiffusion));
    }

    #[test]
    #[should_panic(expected = "not an autoregressive model")]
    fn token_curve_rejects_diffusion_models() {
        let _ = TokenServiceCurve::from_profiler(&profiler(), ModelId::StableDiffusion);
    }
}
