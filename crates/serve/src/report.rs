//! SLO accounting: turning a [`SimResult`] into per-model serving
//! statistics and a rendered report.

use mmg_profiler::report::render_table;
use mmg_telemetry::quantile_sorted;
use serde::{Deserialize, Serialize};

use crate::cluster::{RequestRecord, SimResult};
use crate::workload::model_short_name;

/// Serving statistics for one model in the mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSlo {
    /// Short model name (`sd`, `parti`, …).
    pub model: String,
    /// Completed requests.
    pub completed: u64,
    /// Mean queueing delay, seconds.
    pub mean_wait_s: f64,
    /// Median end-to-end latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Fraction of completions inside the deadline.
    pub slo_attainment: f64,
    /// Mean batch size the model's requests were served in.
    pub mean_batch: f64,
}

/// One retained worst-latency request lifecycle, flattened for the
/// report. Sourced from the always-on [`crate::Exemplars`], so these
/// survive streaming mode, where no per-request records exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarRow {
    /// Arrival-order request id.
    pub id: u64,
    /// Short model name.
    pub model: String,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// Queueing delay, seconds.
    pub wait_s: f64,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Seconds past the deadline (0 when on time or no SLO).
    pub over_s: f64,
    /// GPU that served it.
    pub gpu: u64,
    /// Batch size it was served in.
    pub batch: u64,
    /// Requests in the system at its arrival (itself included).
    pub depth: u64,
}

impl ExemplarRow {
    fn from_record(rec: &RequestRecord) -> Self {
        let over = rec.finish_s - rec.deadline_s;
        ExemplarRow {
            id: rec.id,
            model: model_short_name(rec.model).to_string(),
            arrival_s: rec.arrival_s,
            wait_s: rec.wait_s(),
            latency_s: rec.latency_s(),
            over_s: if over.is_finite() { over.max(0.0) } else { 0.0 },
            gpu: rec.gpu as u64,
            batch: rec.batch as u64,
            depth: rec.depth_at_arrival,
        }
    }
}

/// Cluster-wide serving report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Per-model rows, mix declaration order.
    pub models: Vec<ModelSlo>,
    /// Completed requests.
    pub completed: u64,
    /// Admission-control drops.
    pub dropped: u64,
    /// Queue abandonments.
    pub abandoned: u64,
    /// Completions per second over the horizon.
    pub throughput_rps: f64,
    /// On-time completions per second over the horizon.
    pub goodput_rps: f64,
    /// Overall deadline attainment across completions.
    pub slo_attainment: f64,
    /// Mean cluster (GPU-time) utilization.
    pub utilization: f64,
    /// Worst-latency lifecycles, worst first — the p99 sketch says how
    /// bad the tail is; these say *which* requests it was and what they
    /// were waiting behind.
    pub worst: Vec<ExemplarRow>,
}

impl SloReport {
    /// Builds the report from a finished run. Models appear in first-
    /// completion order (callers pass results from a fixed mix, so this
    /// is stable across runs of the same scenario).
    ///
    /// With full records retained the per-model quantiles are exact;
    /// for a streaming run ([`crate::ScenarioCfg::full_records`] off)
    /// they come from the latency sketches, with rank error bounded by
    /// [`crate::LATENCY_SKETCH_EPS`]. Both paths list models in first-
    /// completion order.
    #[must_use]
    pub fn from_result(r: &SimResult) -> Self {
        let models = if r.records.is_empty() && r.stats.completed > 0 {
            Self::models_from_stats(r)
        } else {
            Self::models_from_records(r)
        };
        SloReport {
            models,
            completed: r.stats.completed,
            dropped: r.dropped,
            abandoned: r.abandoned,
            throughput_rps: r.throughput_rps(),
            goodput_rps: r.goodput_rps(),
            slo_attainment: r.slo_attainment(),
            utilization: r.utilization(),
            worst: r
                .stats
                .exemplars
                .worst()
                .iter()
                .rev()
                .map(ExemplarRow::from_record)
                .collect(),
        }
    }

    /// Exact path: per-model rows from the retained records.
    fn models_from_records(r: &SimResult) -> Vec<ModelSlo> {
        let mut order: Vec<&'static str> = Vec::new();
        for rec in &r.records {
            let name = model_short_name(rec.model);
            if !order.contains(&name) {
                order.push(name);
            }
        }
        order
            .iter()
            .map(|&name| {
                let recs: Vec<&RequestRecord> = r
                    .records
                    .iter()
                    .filter(|rec| model_short_name(rec.model) == name)
                    .collect();
                let mut lat: Vec<f64> = recs.iter().map(|rec| rec.latency_s()).collect();
                lat.sort_by(f64::total_cmp);
                let n = recs.len() as f64;
                ModelSlo {
                    model: name.to_string(),
                    completed: recs.len() as u64,
                    mean_wait_s: recs.iter().map(|rec| rec.wait_s()).sum::<f64>() / n,
                    p50_s: quantile_sorted(&lat, 0.50),
                    p95_s: quantile_sorted(&lat, 0.95),
                    p99_s: quantile_sorted(&lat, 0.99),
                    slo_attainment: recs.iter().filter(|rec| rec.on_time()).count() as f64 / n,
                    mean_batch: recs.iter().map(|rec| rec.batch as f64).sum::<f64>() / n,
                }
            })
            .collect()
    }

    /// Streaming path: per-model rows from running sums and quantile
    /// sketches, sorted into first-completion order to match the exact
    /// path's row ordering.
    fn models_from_stats(r: &SimResult) -> Vec<ModelSlo> {
        let mut stats: Vec<&crate::cluster::ModelStats> =
            r.stats.per_model.iter().filter(|m| m.completed > 0).collect();
        stats.sort_by_key(|m| m.first_done_seq);
        stats
            .iter()
            .map(|m| {
                let n = m.completed as f64;
                ModelSlo {
                    model: model_short_name(m.model).to_string(),
                    completed: m.completed,
                    mean_wait_s: m.wait_sum_s / n,
                    p50_s: m.latency_sketch.quantile(0.50),
                    p95_s: m.latency_sketch.quantile(0.95),
                    p99_s: m.latency_sketch.quantile(0.99),
                    slo_attainment: m.on_time as f64 / n,
                    mean_batch: m.batch_sum as f64 / n,
                }
            })
            .collect()
    }

    /// Renders the per-model table plus the cluster summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<(String, Vec<String>)> = self
            .models
            .iter()
            .map(|m| {
                (
                    m.model.clone(),
                    vec![
                        format!("{}", m.completed),
                        format!("{:.0} ms", m.mean_wait_s * 1e3),
                        format!("{:.0} ms", m.p50_s * 1e3),
                        format!("{:.0} ms", m.p95_s * 1e3),
                        format!("{:.0} ms", m.p99_s * 1e3),
                        format!("{:.1}%", m.slo_attainment * 100.0),
                        format!("{:.1}", m.mean_batch),
                    ],
                )
            })
            .collect();
        let table = render_table(
            &["Model", "Done", "Mean wait", "p50", "p95", "p99", "SLO attain", "Mean batch"],
            &rows,
        );
        let mut out = format!(
            "{table}\ncluster: {} done, {} dropped, {} abandoned | throughput {:.2} req/s, \
             goodput {:.2} req/s | SLO attainment {:.1}% | utilization {:.1}%\n",
            self.completed,
            self.dropped,
            self.abandoned,
            self.throughput_rps,
            self.goodput_rps,
            self.slo_attainment * 100.0,
            self.utilization * 100.0,
        );
        if !self.worst.is_empty() {
            let rows: Vec<(String, Vec<String>)> = self
                .worst
                .iter()
                .map(|e| {
                    (
                        format!("#{}", e.id),
                        vec![
                            e.model.clone(),
                            format!("{:.3} s", e.arrival_s),
                            format!("{:.0} ms", e.wait_s * 1e3),
                            format!("{:.0} ms", e.latency_s * 1e3),
                            format!("{:.0} ms", e.over_s * 1e3),
                            format!("gpu{}", e.gpu),
                            format!("{}", e.batch),
                            format!("{}", e.depth),
                        ],
                    )
                })
                .collect();
            out.push_str("\nworst-latency exemplars (worst first):\n");
            out.push_str(&render_table(
                &["Req", "Model", "Arrived", "Wait", "Latency", "Over SLO", "GPU", "Batch", "Depth"],
                &rows,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{simulate, ScenarioCfg, SchedulerKind, SloSpec};
    use crate::profile::{ServiceCurve, ServiceProfile};
    use crate::workload::{ArrivalProcess, RequestMix};
    use mmg_models::ModelId;
    use mmg_telemetry::Registry;

    fn run() -> SimResult {
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::Parti, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.3),
            ServiceCurve::constant(ModelId::Parti, 0.9),
        ]);
        let cfg = ScenarioCfg::new(
            2,
            mix,
            ArrivalProcess::poisson(2.0),
            SchedulerKind::Fifo,
            SloSpec::FixedS(2.0),
            100.0,
            11,
        );
        simulate(&cfg, &profile, &Registry::new())
    }

    #[test]
    fn report_covers_every_model_and_orders_quantiles() {
        let rep = SloReport::from_result(&run());
        assert_eq!(rep.models.len(), 2);
        for m in &rep.models {
            assert!(m.completed > 0, "{}", m.model);
            assert!(m.p50_s <= m.p95_s && m.p95_s <= m.p99_s, "{}", m.model);
            assert!((0.0..=1.0).contains(&m.slo_attainment));
        }
        assert_eq!(
            rep.completed,
            rep.models.iter().map(|m| m.completed).sum::<u64>()
        );
        assert!(rep.goodput_rps <= rep.throughput_rps + 1e-12);
    }

    #[test]
    fn report_serializes() {
        let rep = SloReport::from_result(&run());
        let json = serde_json::to_string(&rep).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
    }

    #[test]
    fn render_mentions_models_and_summary() {
        let text = SloReport::from_result(&run()).render();
        assert!(text.contains("sd"));
        assert!(text.contains("parti"));
        assert!(text.contains("goodput"));
        assert!(text.contains("SLO attainment"));
    }

    /// A ~10k-request scenario in both modes: every streaming-report
    /// quantile must land within the sketch's documented rank-error
    /// bound of the exact (sorted-records) answer, and all the exact
    /// running sums must agree to float precision.
    #[test]
    fn streaming_report_matches_exact_within_sketch_bound() {
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::Parti, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.015),
            ServiceCurve::constant(ModelId::Parti, 0.03),
        ]);
        let cfg = ScenarioCfg::new(
            2,
            mix,
            ArrivalProcess::poisson(100.0),
            SchedulerKind::Fifo,
            SloSpec::FixedS(0.5),
            120.0,
            5,
        );
        let full = simulate(&cfg, &profile, &Registry::new());
        assert!(full.records.len() > 10_000, "want a 10k+ run, got {}", full.records.len());
        let streaming_cfg = ScenarioCfg { full_records: false, ..cfg };
        let streaming = simulate(&streaming_cfg, &profile, &Registry::new());

        let exact = SloReport::from_result(&full);
        let sketched = SloReport::from_result(&streaming);
        assert_eq!(exact.models.len(), sketched.models.len());
        assert_eq!(exact.completed, sketched.completed);
        assert!((exact.slo_attainment - sketched.slo_attainment).abs() < 1e-12);

        for (em, sm) in exact.models.iter().zip(&sketched.models) {
            assert_eq!(em.model, sm.model, "row order must match the exact report");
            assert_eq!(em.completed, sm.completed);
            assert!((em.mean_wait_s - sm.mean_wait_s).abs() < 1e-9);
            assert!((em.mean_batch - sm.mean_batch).abs() < 1e-9);
            // Value-level check of the rank bound: the sketched quantile
            // must sit between the exact order statistics err ranks away.
            let mut lat: Vec<f64> = full
                .records
                .iter()
                .filter(|r| model_short_name(r.model) == em.model)
                .map(RequestRecord::latency_s)
                .collect();
            lat.sort_by(f64::total_cmp);
            let n = lat.len();
            let ms = streaming
                .stats
                .per_model
                .iter()
                .find(|m| model_short_name(m.model) == em.model)
                .unwrap();
            let err = ms.latency_sketch.rank_error_ranks().ceil() as usize + 1;
            for (q, got) in [(0.50, sm.p50_s), (0.95, sm.p95_s), (0.99, sm.p99_s)] {
                let r = (q * (n - 1) as f64).round() as usize;
                let lo = lat[r.saturating_sub(err)];
                let hi = lat[(r + err).min(n - 1)];
                assert!(
                    (lo..=hi).contains(&got),
                    "{} q{q}: {got} outside [{lo}, {hi}] (±{err} ranks of {n})",
                    em.model
                );
            }
        }
    }
}
