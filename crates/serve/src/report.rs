//! SLO accounting: turning a [`SimResult`] into per-model serving
//! statistics and a rendered report.

use mmg_models::ModelId;
use mmg_profiler::report::render_table;
use mmg_telemetry::quantile_sorted;
use serde::{Deserialize, Serialize};

use crate::cluster::{HealthReport, PhaseStats, RequestRecord, SimResult};
use crate::kv::GIB;
use crate::token::TokenSimResult;
use crate::workload::model_short_name;

/// Serving statistics for one model in the mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSlo {
    /// Short model name (`sd`, `parti`, …).
    pub model: String,
    /// Completed requests.
    pub completed: u64,
    /// Mean queueing delay, seconds.
    pub mean_wait_s: f64,
    /// Median end-to-end latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Fraction of completions inside the deadline.
    pub slo_attainment: f64,
    /// Mean batch size the model's requests were served in.
    pub mean_batch: f64,
}

/// One retained worst-latency request lifecycle, flattened for the
/// report. Sourced from the always-on [`crate::Exemplars`], so these
/// survive streaming mode, where no per-request records exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarRow {
    /// Arrival-order request id.
    pub id: u64,
    /// Short model name.
    pub model: String,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// Queueing delay, seconds.
    pub wait_s: f64,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Seconds past the deadline (0 when on time or no SLO).
    pub over_s: f64,
    /// GPU that served it.
    pub gpu: u64,
    /// Batch size it was served in.
    pub batch: u64,
    /// Requests in the system at its arrival (itself included).
    pub depth: u64,
}

impl ExemplarRow {
    fn from_record(rec: &RequestRecord) -> Self {
        let over = rec.finish_s - rec.deadline_s;
        ExemplarRow {
            id: rec.id,
            model: model_short_name(rec.model).to_string(),
            arrival_s: rec.arrival_s,
            wait_s: rec.wait_s(),
            latency_s: rec.latency_s(),
            over_s: if over.is_finite() { over.max(0.0) } else { 0.0 },
            gpu: rec.gpu as u64,
            batch: rec.batch as u64,
            depth: rec.depth_at_arrival,
        }
    }
}

/// One latency-attribution row: where a scope's latency went, by
/// phase. The `*_p99_s` columns are per-phase tail quantiles from the
/// streaming sketches; the `*_sum_s` columns are exact totals, so
/// `queue_sum_s + hold_sum_s + execute_sum_s` equals the scope's summed
/// end-to-end latency (the conservation invariant holds per request and
/// therefore in the sums).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// `"cluster"` or a short model name.
    pub scope: String,
    /// 99th-percentile queue-phase seconds (GPU busy with other work).
    pub queue_p99_s: f64,
    /// 99th-percentile hold-phase seconds (batch-formation wait).
    pub hold_p99_s: f64,
    /// 99th-percentile execute-phase seconds.
    pub execute_p99_s: f64,
    /// Exact total queue-phase seconds across completions.
    pub queue_sum_s: f64,
    /// Exact total hold-phase seconds.
    pub hold_sum_s: f64,
    /// Exact total execute-phase seconds.
    pub execute_sum_s: f64,
}

impl PhaseRow {
    fn from_stats(scope: &str, ph: &PhaseStats) -> Self {
        PhaseRow {
            scope: scope.to_string(),
            queue_p99_s: ph.queue.quantile(0.99).unwrap_or(0.0),
            hold_p99_s: ph.hold.quantile(0.99).unwrap_or(0.0),
            execute_p99_s: ph.execute.quantile(0.99).unwrap_or(0.0),
            queue_sum_s: ph.queue_sum_s,
            hold_sum_s: ph.hold_sum_s,
            execute_sum_s: ph.execute_sum_s,
        }
    }

    /// Per-phase shares of the summed p99s (`queue`, `hold`, `execute`)
    /// — the headline "p99 = 12% queue + 71% hold + 17% execute"
    /// decomposition. All zeros when the scope saw no latency.
    #[must_use]
    pub fn p99_shares(&self) -> [f64; 3] {
        let total = self.queue_p99_s + self.hold_p99_s + self.execute_p99_s;
        if total <= 0.0 {
            [0.0; 3]
        } else {
            [
                self.queue_p99_s / total,
                self.hold_p99_s / total,
                self.execute_p99_s / total,
            ]
        }
    }
}

/// One burn-rate alert transition, flattened for the report timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRow {
    /// Sim time of the transition, seconds.
    pub t_s: f64,
    /// Name of the rule that transitioned (e.g. `fast-burn`).
    pub rule: String,
    /// `"fire"` or `"clear"`.
    pub kind: String,
    /// Long-window burn rate at the transition.
    pub long_burn: f64,
    /// Short-window burn rate at the transition.
    pub short_burn: f64,
}

/// One ratcheting-queue-depth transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatchetRow {
    /// Sim time of the transition, seconds.
    pub t_s: f64,
    /// `"fire"` or `"clear"`.
    pub kind: String,
    /// Mean queue depth over the window that transitioned.
    pub depth: f64,
    /// Baseline depth the ratchet grew from.
    pub baseline: f64,
}

/// The SLO-health timeline of a run, rendered as fire/clear rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSection {
    /// The availability objective the burn rates are measured against.
    pub objective: f64,
    /// Burn-rate alert transitions, chronological.
    pub alerts: Vec<AlertRow>,
    /// Queue-depth ratchet transitions, chronological.
    pub ratchet: Vec<RatchetRow>,
    /// Sim time of the first alert fire, if any fired.
    pub time_to_first_alert_s: Option<f64>,
}

impl HealthSection {
    fn from_report(h: &HealthReport) -> Self {
        HealthSection {
            objective: h.policy.objective,
            alerts: h
                .alerts
                .iter()
                .map(|e| AlertRow {
                    t_s: e.t_s,
                    rule: h.policy.rules[e.rule].name.clone(),
                    kind: e.kind.label().to_string(),
                    long_burn: e.long_burn,
                    short_burn: e.short_burn,
                })
                .collect(),
            ratchet: h
                .ratchet
                .iter()
                .map(|e| RatchetRow {
                    t_s: e.t_s,
                    kind: e.kind.label().to_string(),
                    depth: e.depth,
                    baseline: e.baseline,
                })
                .collect(),
            time_to_first_alert_s: h.time_to_first_alert_s(),
        }
    }
}

/// One per-model energy row: sustained draw and joules per completed
/// request. The per-request figure attributes only busy-span energy —
/// idle overhead belongs to the cluster, not to any one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Short model name.
    pub model: String,
    /// Modeled board draw while this model's batches run, watts.
    pub draw_w: f64,
    /// Busy GPU-seconds spent on this model's batches.
    pub busy_s: f64,
    /// Busy-span joules per completed request.
    pub j_per_request: f64,
    /// What one request produces: `J/image`, `J/video`, or `J/req`.
    pub unit: String,
}

/// The energy accounting of a run. Present only when the service
/// profile carried power figures ([`crate::ServiceProfile::has_power`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergySection {
    /// Idle board draw, watts.
    pub idle_w: f64,
    /// Per-model rows, first-completion order (matching the main table).
    pub models: Vec<EnergyRow>,
    /// Total cluster energy over the run, watt-hours (busy spans at each
    /// model's draw, idle remainder at idle draw).
    pub total_wh: f64,
    /// Mean modeled draw per GPU over the run, watts.
    pub mean_power_w: f64,
    /// Watt-hours per 1000 on-time completions — the energy cost of
    /// goodput (infinite goodput-free runs report 0).
    pub wh_per_1k_on_time: f64,
}

impl EnergySection {
    fn from_result(r: &SimResult) -> Option<Self> {
        let e = r.energy.as_ref()?;
        let total_wh = r.total_energy_wh().expect("energy present");
        let mut stats: Vec<(usize, &crate::cluster::ModelStats)> = r
            .stats
            .per_model
            .iter()
            .enumerate()
            .filter(|(_, m)| m.completed > 0)
            .collect();
        stats.sort_by_key(|(_, m)| m.first_done_seq);
        let models = stats
            .iter()
            .map(|&(i, m)| {
                let unit = if m.model == ModelId::Llama2 {
                    "J/req"
                } else if m.model.is_video() {
                    "J/video"
                } else {
                    "J/image"
                };
                EnergyRow {
                    model: model_short_name(m.model).to_string(),
                    draw_w: e.model_draw_w[i],
                    busy_s: e.model_busy_s[i],
                    j_per_request: e.model_energy_j(i) / m.completed as f64,
                    unit: unit.to_string(),
                }
            })
            .collect();
        Some(EnergySection {
            idle_w: e.idle_w,
            models,
            total_wh,
            mean_power_w: r.mean_power_w().expect("energy present"),
            wh_per_1k_on_time: if r.stats.on_time > 0 {
                total_wh * 1000.0 / r.stats.on_time as f64
            } else {
                0.0
            },
        })
    }
}

/// Cluster-wide serving report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Per-model rows, mix declaration order.
    pub models: Vec<ModelSlo>,
    /// Completed requests.
    pub completed: u64,
    /// Admission-control drops.
    pub dropped: u64,
    /// Queue abandonments.
    pub abandoned: u64,
    /// Completions per second over the horizon.
    pub throughput_rps: f64,
    /// On-time completions per second over the horizon.
    pub goodput_rps: f64,
    /// Overall deadline attainment across completions.
    pub slo_attainment: f64,
    /// Mean cluster (GPU-time) utilization.
    pub utilization: f64,
    /// Worst-latency lifecycles, worst first — the p99 sketch says how
    /// bad the tail is; these say *which* requests it was and what they
    /// were waiting behind.
    pub worst: Vec<ExemplarRow>,
    /// Latency attribution by phase — a cluster row first, then one row
    /// per model in first-completion order. Present only when the run
    /// had [`crate::ScenarioCfg::attrib`] on.
    pub attribution: Option<Vec<PhaseRow>>,
    /// Burn-rate alert and ratchet timeline. Present only when the run
    /// had an SLO policy ([`crate::ScenarioCfg::slo_policy`]).
    pub health: Option<HealthSection>,
    /// Energy accounting. Present only when the service profile carried
    /// power figures.
    pub energy: Option<EnergySection>,
}

impl SloReport {
    /// Builds the report from a finished run. Models appear in first-
    /// completion order (callers pass results from a fixed mix, so this
    /// is stable across runs of the same scenario).
    ///
    /// With full records retained the per-model quantiles are exact;
    /// for a streaming run ([`crate::ScenarioCfg::full_records`] off)
    /// they come from the latency sketches, with rank error bounded by
    /// [`crate::LATENCY_SKETCH_EPS`]. Both paths list models in first-
    /// completion order.
    #[must_use]
    pub fn from_result(r: &SimResult) -> Self {
        let models = if r.records.is_empty() && r.stats.completed > 0 {
            Self::models_from_stats(r)
        } else {
            Self::models_from_records(r)
        };
        SloReport {
            models,
            completed: r.stats.completed,
            dropped: r.dropped,
            abandoned: r.abandoned,
            throughput_rps: r.throughput_rps(),
            goodput_rps: r.goodput_rps(),
            slo_attainment: r.slo_attainment(),
            utilization: r.utilization(),
            worst: r
                .stats
                .exemplars
                .worst()
                .iter()
                .rev()
                .map(ExemplarRow::from_record)
                .collect(),
            attribution: r.stats.phases.as_ref().map(|cluster_ph| {
                let mut rows = vec![PhaseRow::from_stats("cluster", cluster_ph)];
                let mut stats: Vec<&crate::cluster::ModelStats> = r
                    .stats
                    .per_model
                    .iter()
                    .filter(|m| m.completed > 0 && m.phases.is_some())
                    .collect();
                stats.sort_by_key(|m| m.first_done_seq);
                rows.extend(stats.iter().map(|m| {
                    PhaseRow::from_stats(
                        model_short_name(m.model),
                        m.phases.as_ref().expect("filtered above"),
                    )
                }));
                rows
            }),
            health: r.health.as_ref().map(HealthSection::from_report),
            energy: EnergySection::from_result(r),
        }
    }

    /// Exact path: per-model rows from the retained records.
    fn models_from_records(r: &SimResult) -> Vec<ModelSlo> {
        let mut order: Vec<&'static str> = Vec::new();
        for rec in &r.records {
            let name = model_short_name(rec.model);
            if !order.contains(&name) {
                order.push(name);
            }
        }
        order
            .iter()
            .map(|&name| {
                let recs: Vec<&RequestRecord> = r
                    .records
                    .iter()
                    .filter(|rec| model_short_name(rec.model) == name)
                    .collect();
                let mut lat: Vec<f64> = recs.iter().map(|rec| rec.latency_s()).collect();
                lat.sort_by(f64::total_cmp);
                let n = recs.len() as f64;
                ModelSlo {
                    model: name.to_string(),
                    completed: recs.len() as u64,
                    mean_wait_s: recs.iter().map(|rec| rec.wait_s()).sum::<f64>() / n,
                    p50_s: quantile_sorted(&lat, 0.50).expect("model has completions"),
                    p95_s: quantile_sorted(&lat, 0.95).expect("model has completions"),
                    p99_s: quantile_sorted(&lat, 0.99).expect("model has completions"),
                    slo_attainment: recs.iter().filter(|rec| rec.on_time()).count() as f64 / n,
                    mean_batch: recs.iter().map(|rec| rec.batch as f64).sum::<f64>() / n,
                }
            })
            .collect()
    }

    /// Streaming path: per-model rows from running sums and quantile
    /// sketches, sorted into first-completion order to match the exact
    /// path's row ordering.
    fn models_from_stats(r: &SimResult) -> Vec<ModelSlo> {
        let mut stats: Vec<&crate::cluster::ModelStats> =
            r.stats.per_model.iter().filter(|m| m.completed > 0).collect();
        stats.sort_by_key(|m| m.first_done_seq);
        stats
            .iter()
            .map(|m| {
                let n = m.completed as f64;
                ModelSlo {
                    model: model_short_name(m.model).to_string(),
                    completed: m.completed,
                    mean_wait_s: m.wait_sum_s / n,
                    p50_s: m.latency_sketch.quantile(0.50).expect("model has completions"),
                    p95_s: m.latency_sketch.quantile(0.95).expect("model has completions"),
                    p99_s: m.latency_sketch.quantile(0.99).expect("model has completions"),
                    slo_attainment: m.on_time as f64 / n,
                    mean_batch: m.batch_sum as f64 / n,
                }
            })
            .collect()
    }

    /// Renders the per-model table plus the cluster summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<(String, Vec<String>)> = self
            .models
            .iter()
            .map(|m| {
                (
                    m.model.clone(),
                    vec![
                        format!("{}", m.completed),
                        format!("{:.0} ms", m.mean_wait_s * 1e3),
                        format!("{:.0} ms", m.p50_s * 1e3),
                        format!("{:.0} ms", m.p95_s * 1e3),
                        format!("{:.0} ms", m.p99_s * 1e3),
                        format!("{:.1}%", m.slo_attainment * 100.0),
                        format!("{:.1}", m.mean_batch),
                    ],
                )
            })
            .collect();
        let table = render_table(
            &["Model", "Done", "Mean wait", "p50", "p95", "p99", "SLO attain", "Mean batch"],
            &rows,
        );
        let mut out = format!(
            "{table}\ncluster: {} done, {} dropped, {} abandoned | throughput {:.2} req/s, \
             goodput {:.2} req/s | SLO attainment {:.1}% | utilization {:.1}%\n",
            self.completed,
            self.dropped,
            self.abandoned,
            self.throughput_rps,
            self.goodput_rps,
            self.slo_attainment * 100.0,
            self.utilization * 100.0,
        );
        if !self.worst.is_empty() {
            let rows: Vec<(String, Vec<String>)> = self
                .worst
                .iter()
                .map(|e| {
                    (
                        format!("#{}", e.id),
                        vec![
                            e.model.clone(),
                            format!("{:.3} s", e.arrival_s),
                            format!("{:.0} ms", e.wait_s * 1e3),
                            format!("{:.0} ms", e.latency_s * 1e3),
                            format!("{:.0} ms", e.over_s * 1e3),
                            format!("gpu{}", e.gpu),
                            format!("{}", e.batch),
                            format!("{}", e.depth),
                        ],
                    )
                })
                .collect();
            out.push_str("\nworst-latency exemplars (worst first):\n");
            out.push_str(&render_table(
                &["Req", "Model", "Arrived", "Wait", "Latency", "Over SLO", "GPU", "Batch", "Depth"],
                &rows,
            ));
        }
        if let Some(attr) = &self.attribution {
            if let Some(cluster) = attr.first() {
                let [q, h, e] = cluster.p99_shares();
                out.push_str(&format!(
                    "\nattribution: p99 = {:.0}% queue + {:.0}% hold + {:.0}% execute\n",
                    q * 100.0,
                    h * 100.0,
                    e * 100.0
                ));
            }
            let rows: Vec<(String, Vec<String>)> = attr
                .iter()
                .map(|p| {
                    let [q, h, e] = p.p99_shares();
                    (
                        p.scope.clone(),
                        vec![
                            format!("{:.0} ms", p.queue_p99_s * 1e3),
                            format!("{:.0} ms", p.hold_p99_s * 1e3),
                            format!("{:.0} ms", p.execute_p99_s * 1e3),
                            format!("{:.0}%", q * 100.0),
                            format!("{:.0}%", h * 100.0),
                            format!("{:.0}%", e * 100.0),
                        ],
                    )
                })
                .collect();
            out.push_str(&render_table(
                &["Scope", "Queue p99", "Hold p99", "Exec p99", "Queue", "Hold", "Exec"],
                &rows,
            ));
        }
        if let Some(hs) = &self.health {
            out.push_str(&format!(
                "\nslo health (objective {:.1}%): ",
                hs.objective * 100.0
            ));
            match hs.time_to_first_alert_s {
                Some(t) => out.push_str(&format!("first alert at {t:.1} s\n")),
                None => out.push_str("no burn-rate alerts\n"),
            }
            if !hs.alerts.is_empty() {
                let rows: Vec<(String, Vec<String>)> = hs
                    .alerts
                    .iter()
                    .map(|a| {
                        (
                            format!("{:.1} s", a.t_s),
                            vec![
                                a.rule.clone(),
                                a.kind.clone(),
                                format!("{:.1}x", a.long_burn),
                                format!("{:.1}x", a.short_burn),
                            ],
                        )
                    })
                    .collect();
                out.push_str(&render_table(
                    &["Time", "Rule", "Event", "Long burn", "Short burn"],
                    &rows,
                ));
            }
            for rr in &hs.ratchet {
                out.push_str(&format!(
                    "ratchet {} at {:.1} s: mean depth {:.1} (baseline {:.1})\n",
                    rr.kind, rr.t_s, rr.depth, rr.baseline
                ));
            }
        }
        if let Some(es) = &self.energy {
            let rows: Vec<(String, Vec<String>)> = es
                .models
                .iter()
                .map(|e| {
                    (
                        e.model.clone(),
                        vec![
                            format!("{:.0} W", e.draw_w),
                            format!("{:.1} s", e.busy_s),
                            format!("{:.1} {}", e.j_per_request, e.unit),
                        ],
                    )
                })
                .collect();
            out.push_str("\nenergy:\n");
            out.push_str(&render_table(&["Model", "Draw", "Busy", "Per request"], &rows));
            out.push_str(&format!(
                "energy: {:.2} Wh total (idle {:.0} W) | mean draw {:.0} W/GPU | \
                 {:.2} Wh per 1k on-time\n",
                es.total_wh, es.idle_w, es.mean_power_w, es.wh_per_1k_on_time,
            ));
        }
        out
    }
}

/// One latency-phase row of the token-serving report: the per-phase
/// percentiles production LLM serving is judged on (TTFT and TPOT
/// alongside queue wait and end-to-end latency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenPhaseRow {
    /// Phase name: `queue` | `ttft` | `tpot` | `e2e`.
    pub phase: String,
    /// Mean, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
}

/// Per-GPU KV-cache accounting row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenKvRow {
    /// GPU index.
    pub gpu: u64,
    /// KV byte budget, GiB.
    pub budget_gib: f64,
    /// Peak resident KV bytes, GiB.
    pub peak_gib: f64,
    /// Sequences evicted for recompute on this GPU.
    pub preemptions: u64,
}

/// The rendered outcome of a token-serving run: phase percentiles
/// (TTFT/TPOT), KV-cache pressure per GPU, and cluster totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenReport {
    /// Short model name.
    pub model: String,
    /// GPUs simulated.
    pub gpus: u64,
    /// Scheduler name (`static` | `continuous`).
    pub scheduler: String,
    /// Phase priority (`decode` | `prefill`).
    pub priority: String,
    /// KV admission policy (`prompt` | `reserve`).
    pub admission: String,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Arrivals dropped as oversized for the KV budget.
    pub dropped: u64,
    /// Sequences evicted for recompute (all GPUs).
    pub preemptions: u64,
    /// Output tokens decoded.
    pub decoded_tokens: u64,
    /// Prompt tokens prefilled.
    pub prefilled_tokens: u64,
    /// Decode iterations executed.
    pub iterations: u64,
    /// Decoded tokens per simulated second.
    pub tokens_per_sim_s: f64,
    /// Completions per second.
    pub throughput_rps: f64,
    /// On-time completions per second.
    pub goodput_rps: f64,
    /// Fraction of completions meeting both SLO bounds.
    pub slo_attainment: f64,
    /// Mean GPU busy fraction.
    pub utilization: f64,
    /// Mean decode batch size.
    pub mean_decode_batch: f64,
    /// TTFT SLO bound, seconds.
    pub ttft_slo_s: f64,
    /// TPOT SLO bound, seconds.
    pub tpot_slo_s: f64,
    /// Per-phase latency percentiles.
    pub phases: Vec<TokenPhaseRow>,
    /// Per-GPU KV-cache rows.
    pub kv: Vec<TokenKvRow>,
}

impl TokenReport {
    /// Builds the report from a simulation result.
    #[must_use]
    pub fn from_result(r: &TokenSimResult) -> Self {
        let p = &r.stats.phases;
        let n = r.stats.completed as f64;
        let row = |phase: &str, sketch: &mmg_telemetry::QuantileSketch, sum: f64| TokenPhaseRow {
            phase: phase.to_string(),
            mean_s: if n > 0.0 { sum / n } else { 0.0 },
            p50_s: sketch.quantile(0.50).unwrap_or(0.0),
            p95_s: sketch.quantile(0.95).unwrap_or(0.0),
            p99_s: sketch.quantile(0.99).unwrap_or(0.0),
        };
        TokenReport {
            model: model_short_name(r.model).to_string(),
            gpus: r.gpus as u64,
            scheduler: r.scheduler.to_string(),
            priority: r.priority.to_string(),
            admission: r.admission.to_string(),
            arrivals: r.stats.arrivals,
            completed: r.stats.completed,
            dropped: r.stats.dropped_oversized,
            preemptions: r.preemptions(),
            decoded_tokens: r.stats.decoded_tokens,
            prefilled_tokens: r.stats.prefilled_tokens,
            iterations: r.stats.iterations,
            tokens_per_sim_s: r.tokens_per_sim_s(),
            throughput_rps: r.throughput_rps(),
            goodput_rps: r.goodput_rps(),
            slo_attainment: r.slo_attainment(),
            utilization: r.utilization(),
            mean_decode_batch: r.mean_decode_batch(),
            ttft_slo_s: r.slo.ttft_s,
            tpot_slo_s: r.slo.tpot_s,
            phases: vec![
                row("queue", &p.queue, p.queue_sum_s),
                row("ttft", &p.ttft, p.ttft_sum_s),
                row("tpot", &p.tpot, p.tpot_sum_s),
                row("e2e", &p.e2e, p.e2e_sum_s),
            ],
            kv: r
                .kv
                .iter()
                .enumerate()
                .map(|(i, l)| TokenKvRow {
                    gpu: i as u64,
                    budget_gib: l.budget_bytes as f64 / GIB,
                    peak_gib: l.peak_resident_bytes as f64 / GIB,
                    preemptions: l.preemptions,
                })
                .collect(),
        }
    }

    /// Renders the phase table, the KV table, and the totals line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "token serving: {} on {} GPUs | {} batching, {} priority, {} admission\n",
            self.model, self.gpus, self.scheduler, self.priority, self.admission
        );
        let phase_rows: Vec<(String, Vec<String>)> = self
            .phases
            .iter()
            .map(|p| {
                (
                    p.phase.clone(),
                    vec![
                        format!("{:.1} ms", p.mean_s * 1e3),
                        format!("{:.1} ms", p.p50_s * 1e3),
                        format!("{:.1} ms", p.p95_s * 1e3),
                        format!("{:.1} ms", p.p99_s * 1e3),
                    ],
                )
            })
            .collect();
        out.push_str(&render_table(&["Phase", "Mean", "p50", "p95", "p99"], &phase_rows));
        let kv_rows: Vec<(String, Vec<String>)> = self
            .kv
            .iter()
            .map(|k| {
                (
                    format!("gpu{}", k.gpu),
                    vec![
                        format!("{:.1} GiB", k.budget_gib),
                        format!("{:.2} GiB", k.peak_gib),
                        format!("{:.1}%", 100.0 * k.peak_gib / k.budget_gib.max(1e-9)),
                        format!("{}", k.preemptions),
                    ],
                )
            })
            .collect();
        out.push('\n');
        out.push_str(&render_table(
            &["GPU", "KV budget", "KV peak", "Peak util", "Preempted"],
            &kv_rows,
        ));
        out.push_str(&format!(
            "\ntokens: {} decoded, {} prefilled over {} iterations | {:.0} tok/s simulated | \
             mean decode batch {:.1}\ncluster: {} arrived, {} done, {} dropped, {} preempted | \
             throughput {:.2} req/s, goodput {:.2} req/s | SLO attainment {:.1}% \
             (TTFT <= {:.0} ms, TPOT <= {:.1} ms) | utilization {:.1}%\n",
            self.decoded_tokens,
            self.prefilled_tokens,
            self.iterations,
            self.tokens_per_sim_s,
            self.mean_decode_batch,
            self.arrivals,
            self.completed,
            self.dropped,
            self.preemptions,
            self.throughput_rps,
            self.goodput_rps,
            self.slo_attainment * 100.0,
            self.ttft_slo_s * 1e3,
            self.tpot_slo_s * 1e3,
            self.utilization * 100.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{simulate, ScenarioCfg, SchedulerKind, SloSpec};
    use crate::profile::{ServiceCurve, ServiceProfile};
    use crate::workload::{ArrivalProcess, RequestMix};
    use mmg_models::ModelId;
    use mmg_telemetry::Registry;

    fn run() -> SimResult {
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::Parti, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.3),
            ServiceCurve::constant(ModelId::Parti, 0.9),
        ]);
        let cfg = ScenarioCfg::new(
            2,
            mix,
            ArrivalProcess::poisson(2.0),
            SchedulerKind::Fifo,
            SloSpec::FixedS(2.0),
            100.0,
            11,
        );
        simulate(&cfg, &profile, &Registry::new())
    }

    #[test]
    fn report_covers_every_model_and_orders_quantiles() {
        let rep = SloReport::from_result(&run());
        assert_eq!(rep.models.len(), 2);
        for m in &rep.models {
            assert!(m.completed > 0, "{}", m.model);
            assert!(m.p50_s <= m.p95_s && m.p95_s <= m.p99_s, "{}", m.model);
            assert!((0.0..=1.0).contains(&m.slo_attainment));
        }
        assert_eq!(
            rep.completed,
            rep.models.iter().map(|m| m.completed).sum::<u64>()
        );
        assert!(rep.goodput_rps <= rep.throughput_rps + 1e-12);
    }

    #[test]
    fn report_serializes() {
        let rep = SloReport::from_result(&run());
        let json = serde_json::to_string(&rep).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
    }

    #[test]
    fn render_mentions_models_and_summary() {
        let text = SloReport::from_result(&run()).render();
        assert!(text.contains("sd"));
        assert!(text.contains("parti"));
        assert!(text.contains("goodput"));
        assert!(text.contains("SLO attainment"));
    }

    /// Metered runs grow an energy section with J-per-request rows;
    /// unmetered runs keep `energy: None` so serialized reports are
    /// unchanged from before the energy layer.
    #[test]
    fn energy_section_rides_metered_runs_only() {
        let plain = SloReport::from_result(&run());
        assert!(plain.energy.is_none());
        assert!(!plain.render().contains("energy:"));

        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::MakeAVideo, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.3).with_draw_w(330.0),
            ServiceCurve::constant(ModelId::MakeAVideo, 0.9).with_draw_w(290.0),
        ])
        .with_idle_w(55.0);
        let cfg = ScenarioCfg::new(
            2,
            mix,
            ArrivalProcess::poisson(2.0),
            SchedulerKind::Fifo,
            SloSpec::FixedS(3.0),
            100.0,
            11,
        );
        let r = simulate(&cfg, &profile, &Registry::new());
        let rep = SloReport::from_result(&r);
        let es = rep.energy.as_ref().expect("metered run");
        assert_eq!(es.idle_w, 55.0);
        assert!(es.total_wh > 0.0);
        assert!(es.mean_power_w > 55.0);
        assert!(es.wh_per_1k_on_time > 0.0);
        let sd = es.models.iter().find(|m| m.model == "sd").expect("sd row");
        assert_eq!(sd.unit, "J/image");
        // Constant curve: J/request = service_s × draw / 1 (batch 1 under
        // FIFO), so ~0.3 × 330.
        assert!((sd.j_per_request - 0.3 * 330.0).abs() < 1.0, "{}", sd.j_per_request);
        let mav = es.models.iter().find(|m| m.model == "mav").expect("mav row");
        assert_eq!(mav.unit, "J/video");
        assert!((mav.j_per_request - 0.9 * 290.0).abs() < 1.0, "{}", mav.j_per_request);
        let text = rep.render();
        assert!(text.contains("J/image") && text.contains("J/video"));
        assert!(text.contains("Wh per 1k on-time"));
        // Round-trips with the section attached.
        let back: SloReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(rep, back);
    }

    /// A ~10k-request scenario in both modes: every streaming-report
    /// quantile must land within the sketch's documented rank-error
    /// bound of the exact (sorted-records) answer, and all the exact
    /// running sums must agree to float precision.
    #[test]
    fn streaming_report_matches_exact_within_sketch_bound() {
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 3.0),
            (ModelId::Parti, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.015),
            ServiceCurve::constant(ModelId::Parti, 0.03),
        ]);
        let cfg = ScenarioCfg::new(
            2,
            mix,
            ArrivalProcess::poisson(100.0),
            SchedulerKind::Fifo,
            SloSpec::FixedS(0.5),
            120.0,
            5,
        );
        let full = simulate(&cfg, &profile, &Registry::new());
        assert!(full.records.len() > 10_000, "want a 10k+ run, got {}", full.records.len());
        let streaming_cfg = ScenarioCfg { full_records: false, ..cfg };
        let streaming = simulate(&streaming_cfg, &profile, &Registry::new());

        let exact = SloReport::from_result(&full);
        let sketched = SloReport::from_result(&streaming);
        assert_eq!(exact.models.len(), sketched.models.len());
        assert_eq!(exact.completed, sketched.completed);
        assert!((exact.slo_attainment - sketched.slo_attainment).abs() < 1e-12);

        for (em, sm) in exact.models.iter().zip(&sketched.models) {
            assert_eq!(em.model, sm.model, "row order must match the exact report");
            assert_eq!(em.completed, sm.completed);
            assert!((em.mean_wait_s - sm.mean_wait_s).abs() < 1e-9);
            assert!((em.mean_batch - sm.mean_batch).abs() < 1e-9);
            // Value-level check of the rank bound: the sketched quantile
            // must sit between the exact order statistics err ranks away.
            let mut lat: Vec<f64> = full
                .records
                .iter()
                .filter(|r| model_short_name(r.model) == em.model)
                .map(RequestRecord::latency_s)
                .collect();
            lat.sort_by(f64::total_cmp);
            let n = lat.len();
            let ms = streaming
                .stats
                .per_model
                .iter()
                .find(|m| model_short_name(m.model) == em.model)
                .unwrap();
            let err = ms.latency_sketch.rank_error_ranks().ceil() as usize + 1;
            for (q, got) in [(0.50, sm.p50_s), (0.95, sm.p95_s), (0.99, sm.p99_s)] {
                let r = (q * (n - 1) as f64).round() as usize;
                let lo = lat[r.saturating_sub(err)];
                let hi = lat[(r + err).min(n - 1)];
                assert!(
                    (lo..=hi).contains(&got),
                    "{} q{q}: {got} outside [{lo}, {hi}] (±{err} ranks of {n})",
                    em.model
                );
            }
        }
    }
}
