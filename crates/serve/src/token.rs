//! Token-level autoregressive serving: continuous batching over a
//! KV-cache memory model.
//!
//! The cluster DES ([`crate::cluster`]) prices a request as one opaque
//! service-curve lookup; this engine opens that box for the paper's
//! autoregressive models (LLaMA, Parti, Muse). Requests carry sampled
//! prompt/output token lengths, and each GPU advances in **decode
//! iterations**:
//!
//! - **Continuous (in-flight) batching** — new requests join the
//!   running batch at iteration boundaries instead of waiting for the
//!   batch to drain (Orca/vLLM iteration-level scheduling).
//! - **Chunked prefill** — prompts are processed `chunk_tokens` at a
//!   time, interleaved with decode (Sarathi-style), under a
//!   decode-priority or prefill-priority policy.
//! - **KV-cache pressure** — every resident sequence pins
//!   `kv_bytes_per_token × (prompt + generated)` bytes against the
//!   SKU's HBM budget ([`KvLedger`]); admission is cache-aware and
//!   overflow is resolved by preempting the youngest sequence for
//!   later recompute.
//! - **Profiler-grounded step costs** — every iteration's duration is
//!   a [`TokenServiceCurve`] query, so batch-size amortization and
//!   context-length KV traffic come from the real kernel lowering.
//!
//! Latency decomposes into the phases production serving is judged on:
//! queue wait, TTFT (time-to-first-token) and TPOT (time-per-output-
//! token), each tracked in Greenwald–Khanna sketches. Determinism
//! matches the rest of the crate: one seed fixes the sample path and
//! runs are byte-identical across processes and `--jobs`.

use std::collections::VecDeque;

use mmg_models::ModelId;
use mmg_telemetry::{latency_buckets_s, Histogram, QuantileSketch, Registry};

use crate::cluster::LATENCY_SKETCH_EPS;
use crate::des::EventQueue;
use crate::flight::{FlightCfg, FlightRecorder};
use crate::kv::{KvAdmission, KvLedger};
use crate::profile::TokenServiceCurve;
use crate::workload::{model_short_name, ArrivalGen, ArrivalProcess, LengthDist, LengthSampler};

/// How requests are grouped onto a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenBatching {
    /// Request-level batching: admit up to `batch` requests onto an
    /// idle GPU, run the whole group to completion, only then admit
    /// again. The pre-Orca baseline.
    Static {
        /// Maximum requests per batch.
        batch: usize,
    },
    /// Iteration-level (continuous) batching: admit waiting requests
    /// into the running batch at every iteration boundary, up to
    /// `max_batch` concurrent sequences.
    Continuous {
        /// Maximum concurrent sequences per GPU.
        max_batch: usize,
    },
}

impl TokenBatching {
    /// Parses `static` | `continuous` with a shared batch cap.
    pub fn parse(name: &str, batch: usize) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "static" => Ok(TokenBatching::Static { batch }),
            "continuous" => Ok(TokenBatching::Continuous { max_batch: batch }),
            other => Err(format!(
                "unknown scheduler '{other}'; expected static | continuous"
            )),
        }
    }

    /// The batch-size cap.
    #[must_use]
    pub fn cap(&self) -> usize {
        match *self {
            TokenBatching::Static { batch } => batch,
            TokenBatching::Continuous { max_batch } => max_batch,
        }
    }

    /// The CLI name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TokenBatching::Static { .. } => "static",
            TokenBatching::Continuous { .. } => "continuous",
        }
    }
}

/// Which phase wins an iteration when both prefill and decode work is
/// pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePriority {
    /// Decode every ready sequence each iteration and piggyback at
    /// most `chunk_tokens` of prefill alongside (Sarathi-style chunked
    /// prefill: steady TPOT, slightly slower TTFT).
    Decode,
    /// Dedicate iterations to prefill whenever any sequence is still
    /// prefilling (fastest TTFT, but decode stalls — TPOT jitter).
    Prefill,
}

impl PhasePriority {
    /// Parses `decode` | `prefill`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "decode" => Ok(PhasePriority::Decode),
            "prefill" => Ok(PhasePriority::Prefill),
            other => Err(format!(
                "unknown phase priority '{other}'; expected decode | prefill"
            )),
        }
    }

    /// The CLI name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PhasePriority::Decode => "decode",
            PhasePriority::Prefill => "prefill",
        }
    }
}

/// Per-request token-latency SLO: both bounds must hold for a request
/// to count toward goodput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenSlo {
    /// Time-to-first-token bound, seconds.
    pub ttft_s: f64,
    /// Time-per-output-token bound, seconds.
    pub tpot_s: f64,
}

impl TokenSlo {
    /// A deadline pair derived from the service curve itself: TTFT
    /// within `4×` an uncontended prefill + first step, TPOT within
    /// `4×` the per-token cost of a full batch at mid-generation
    /// context — tight enough that schedulers differ, loose enough
    /// that an unloaded cluster passes comfortably.
    #[must_use]
    pub fn from_curve(curve: &TokenServiceCurve, prompt_mean: f64, output_mean: f64, cap: usize) -> Self {
        let out = curve.fixed_output_tokens.map_or(output_mean, |n| n as f64);
        let ctx = prompt_mean + out / 2.0;
        TokenSlo {
            ttft_s: 4.0 * (curve.prefill_cum_s(prompt_mean) + curve.step_s(cap, prompt_mean)),
            tpot_s: 4.0 * curve.step_s(cap, ctx) / curve.tokens_per_step as f64,
        }
    }
}

/// A token-serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenScenarioCfg {
    /// GPUs in the cluster.
    pub gpus: usize,
    /// The (autoregressive) model served.
    pub model: ModelId,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Batching discipline.
    pub batching: TokenBatching,
    /// Prefill/decode phase priority.
    pub priority: PhasePriority,
    /// KV-cache admission policy.
    pub admission: KvAdmission,
    /// Prefill chunk size, tokens per iteration.
    pub chunk_tokens: usize,
    /// Prompt-length distribution.
    pub prompt: LengthDist,
    /// Output-length distribution (ignored for fixed-grid models).
    pub output: LengthDist,
    /// The goodput SLO.
    pub slo: TokenSlo,
    /// Arrivals stop after this horizon (the run drains afterwards).
    pub duration_s: f64,
    /// Hard cap on arrivals (`None` = horizon only).
    pub max_requests: Option<u64>,
    /// Master seed for arrivals and length sampling.
    pub seed: u64,
}

impl TokenScenarioCfg {
    /// Validates the scenario.
    ///
    /// # Panics
    ///
    /// Panics on zero GPUs, a zero batch cap, a zero prefill chunk, a
    /// non-positive horizon, or a non-AR model.
    pub fn validate(&self) {
        assert!(self.gpus > 0, "need at least one GPU");
        assert!(self.batching.cap() > 0, "batch cap must be positive");
        assert!(self.chunk_tokens > 0, "prefill chunk must be positive");
        assert!(self.duration_s > 0.0, "duration must be positive");
        assert!(
            TokenServiceCurve::supports(self.model),
            "{} is not autoregressive; token serving needs llama | parti | muse",
            self.model
        );
    }
}

/// Streaming phase-latency aggregates for a token run.
#[derive(Debug, Clone)]
pub struct TokenPhaseStats {
    /// Queue wait (arrival → first admission into a running batch).
    pub queue: QuantileSketch,
    /// Time-to-first-token (arrival → first output token).
    pub ttft: QuantileSketch,
    /// Time-per-output-token (steady decode pace after first token).
    pub tpot: QuantileSketch,
    /// End-to-end latency (arrival → last token).
    pub e2e: QuantileSketch,
    /// Exact sums, seconds, for mean computation.
    pub queue_sum_s: f64,
    /// Exact TTFT sum, seconds.
    pub ttft_sum_s: f64,
    /// Exact TPOT sum, seconds.
    pub tpot_sum_s: f64,
    /// Exact end-to-end sum, seconds.
    pub e2e_sum_s: f64,
}

impl TokenPhaseStats {
    fn new() -> Self {
        TokenPhaseStats {
            queue: QuantileSketch::new(LATENCY_SKETCH_EPS),
            ttft: QuantileSketch::new(LATENCY_SKETCH_EPS),
            tpot: QuantileSketch::new(LATENCY_SKETCH_EPS),
            e2e: QuantileSketch::new(LATENCY_SKETCH_EPS),
            queue_sum_s: 0.0,
            ttft_sum_s: 0.0,
            tpot_sum_s: 0.0,
            e2e_sum_s: 0.0,
        }
    }

    fn observe(&mut self, queue_s: f64, ttft_s: f64, tpot_s: f64, e2e_s: f64) {
        self.queue.observe(queue_s);
        self.ttft.observe(ttft_s);
        self.tpot.observe(tpot_s);
        self.e2e.observe(e2e_s);
        self.queue_sum_s += queue_s;
        self.ttft_sum_s += ttft_s;
        self.tpot_sum_s += tpot_s;
        self.e2e_sum_s += e2e_s;
    }

    fn flush(&mut self) {
        self.queue.flush();
        self.ttft.flush();
        self.tpot.flush();
        self.e2e.flush();
    }
}

/// Counters and sketches aggregated over a token run.
#[derive(Debug, Clone)]
pub struct TokenStats {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests that completed (all output tokens produced).
    pub completed: u64,
    /// Completions that met both SLO bounds.
    pub on_time: u64,
    /// Arrivals dropped because a single sequence could never fit the
    /// KV budget.
    pub dropped_oversized: u64,
    /// Sequences evicted for recompute (summed over GPUs).
    pub preemptions: u64,
    /// Output tokens decoded.
    pub decoded_tokens: u64,
    /// Prompt tokens prefilled (recompute counts again).
    pub prefilled_tokens: u64,
    /// Decode iterations executed.
    pub iterations: u64,
    /// Sum of decode batch sizes over iterations with decode work.
    pub decode_batch_sum: u64,
    /// Iterations that carried decode work.
    pub decode_iterations: u64,
    /// Phase-latency aggregates.
    pub phases: TokenPhaseStats,
}

impl TokenStats {
    fn new() -> Self {
        TokenStats {
            arrivals: 0,
            completed: 0,
            on_time: 0,
            dropped_oversized: 0,
            preemptions: 0,
            decoded_tokens: 0,
            prefilled_tokens: 0,
            iterations: 0,
            decode_batch_sum: 0,
            decode_iterations: 0,
            phases: TokenPhaseStats::new(),
        }
    }
}

/// The outcome of a token-serving simulation.
#[derive(Debug, Clone)]
pub struct TokenSimResult {
    /// The model served.
    pub model: ModelId,
    /// GPUs simulated.
    pub gpus: usize,
    /// Scheduler name (`static` | `continuous`).
    pub scheduler: &'static str,
    /// Phase-priority name.
    pub priority: &'static str,
    /// Admission-policy name.
    pub admission: &'static str,
    /// Per-GPU KV budget, bytes.
    pub kv_budget_bytes: u64,
    /// The SLO judged against.
    pub slo: TokenSlo,
    /// Aggregated counters and sketches.
    pub stats: TokenStats,
    /// Final per-GPU KV ledgers (resident must be zero after drain).
    pub kv: Vec<KvLedger>,
    /// Per-GPU busy seconds.
    pub busy_s: Vec<f64>,
    /// Time of the last simulated event (≥ `duration_s`).
    pub end_s: f64,
}

impl TokenSimResult {
    /// Simulated decoded tokens per simulated second.
    #[must_use]
    pub fn tokens_per_sim_s(&self) -> f64 {
        self.stats.decoded_tokens as f64 / self.end_s.max(1e-9)
    }

    /// Completed requests per second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        self.stats.completed as f64 / self.end_s.max(1e-9)
    }

    /// On-time completions per second.
    #[must_use]
    pub fn goodput_rps(&self) -> f64 {
        self.stats.on_time as f64 / self.end_s.max(1e-9)
    }

    /// Fraction of completions that met both SLO bounds.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.stats.completed == 0 {
            return 1.0;
        }
        self.stats.on_time as f64 / self.stats.completed as f64
    }

    /// Mean GPU busy fraction.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.busy_s.iter().sum();
        busy / (self.gpus as f64 * self.end_s.max(1e-9))
    }

    /// Mean decode batch size over decode-carrying iterations.
    #[must_use]
    pub fn mean_decode_batch(&self) -> f64 {
        if self.stats.decode_iterations == 0 {
            return 0.0;
        }
        self.stats.decode_batch_sum as f64 / self.stats.decode_iterations as f64
    }

    /// Preemptions summed over GPUs.
    #[must_use]
    pub fn preemptions(&self) -> u64 {
        self.kv.iter().map(|l| l.preemptions).sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival,
    Step { gpu: u32 },
}

/// One in-flight (or queued) sequence. Slots are pooled and reused.
#[derive(Debug, Clone, Copy)]
struct Seq {
    arrival_s: f64,
    admitted_s: f64,
    first_token_s: f64,
    prompt: u32,
    output: u32,
    prefilled: u32,
    decoded: u32,
    resident_tokens: u64,
    reserved_bytes: u64,
}

struct GpuState {
    waiting: VecDeque<u32>,
    running: Vec<u32>,
    ledger: KvLedger,
    busy_s: f64,
    stepping: bool,
}

struct TokenSim<'a> {
    cfg: &'a TokenScenarioCfg,
    curve: &'a TokenServiceCurve,
    queue: EventQueue<Event>,
    gpus: Vec<GpuState>,
    slots: Vec<Seq>,
    free_slots: Vec<u32>,
    arrivals: ArrivalGen,
    prompt_len: LengthSampler,
    output_len: LengthSampler,
    stats: TokenStats,
    flight: Option<FlightRecorder>,
    ttft_hist: Histogram,
    tpot_hist: Histogram,
    // Reusable per-iteration buffers (no allocation on the hot path).
    decode_members: Vec<u32>,
    prefill_work: Vec<(u32, u32, u32)>,
    has_prompt_kv: bool,
    end_s: f64,
}

impl<'a> TokenSim<'a> {
    fn new(
        cfg: &'a TokenScenarioCfg,
        curve: &'a TokenServiceCurve,
        kv_budget_bytes: u64,
        registry: &Registry,
        flight: Option<FlightRecorder>,
    ) -> Self {
        let model = model_short_name(cfg.model);
        let buckets = latency_buckets_s();
        TokenSim {
            cfg,
            curve,
            queue: EventQueue::new(),
            gpus: (0..cfg.gpus)
                .map(|_| GpuState {
                    waiting: VecDeque::new(),
                    running: Vec::new(),
                    ledger: KvLedger::new(kv_budget_bytes),
                    busy_s: 0.0,
                    stepping: false,
                })
                .collect(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            arrivals: ArrivalGen::new(cfg.arrival, cfg.seed),
            prompt_len: LengthSampler::new(cfg.prompt, cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            output_len: LengthSampler::new(cfg.output, cfg.seed ^ 0x5851_f42d_4c95_7f2d),
            stats: TokenStats::new(),
            flight,
            ttft_hist: registry.histogram_with("serve_token_ttft_s", &[("model", model)], &buckets),
            tpot_hist: registry.histogram_with("serve_token_tpot_s", &[("model", model)], &buckets),
            decode_members: Vec::new(),
            prefill_work: Vec::new(),
            has_prompt_kv: !curve.prefill_s.is_empty(),
            end_s: 0.0,
        }
    }

    fn run(mut self, registry: &Registry) -> (TokenSimResult, Option<FlightRecorder>) {
        let first = self.arrivals.next_after(0.0);
        if first < self.cfg.duration_s && self.cfg.max_requests != Some(0) {
            self.queue.schedule(first, Event::Arrival);
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.end_s = self.end_s.max(t);
            match ev {
                Event::Arrival => self.on_arrival(t),
                Event::Step { gpu } => {
                    self.gpus[gpu as usize].stepping = false;
                    self.plan(gpu as usize, t);
                }
            }
        }
        self.end_s = self.end_s.max(self.cfg.duration_s);
        self.stats.phases.flush();
        self.stats.preemptions = self.gpus.iter().map(|g| g.ledger.preemptions).sum();
        self.publish(registry);
        let result = TokenSimResult {
            model: self.cfg.model,
            gpus: self.cfg.gpus,
            scheduler: self.cfg.batching.name(),
            priority: self.cfg.priority.name(),
            admission: self.cfg.admission.name(),
            kv_budget_bytes: self.gpus[0].ledger.budget_bytes,
            slo: self.cfg.slo,
            stats: self.stats,
            kv: self.gpus.iter().map(|g| g.ledger.clone()).collect(),
            busy_s: self.gpus.iter().map(|g| g.busy_s).collect(),
            end_s: self.end_s,
        };
        (result, self.flight)
    }

    /// KV bytes of a sequence's prompt (zero for models whose
    /// conditioning lives outside the cache).
    fn prompt_kv_tokens(&self, seq: &Seq) -> u64 {
        if self.has_prompt_kv {
            seq.prompt as u64
        } else {
            0
        }
    }

    fn admission_demand(&self, seq: &Seq) -> u64 {
        let prompt = self.prompt_kv_tokens(seq);
        let total = match self.cfg.admission {
            KvAdmission::Prompt => prompt,
            KvAdmission::Reserve => prompt + seq.output as u64,
        };
        total * self.curve.kv_bytes_per_token
    }

    fn on_arrival(&mut self, t: f64) {
        self.stats.arrivals += 1;
        if let Some(f) = self.flight.as_mut() {
            f.on_arrival(t);
        }
        let prompt = self.prompt_len.sample() as u32;
        let output = self
            .curve
            .fixed_output_tokens
            .map_or_else(|| self.output_len.sample() as u32, |n| n as u32);
        let seq = Seq {
            arrival_s: t,
            admitted_s: -1.0,
            first_token_s: -1.0,
            prompt,
            output,
            prefilled: if self.has_prompt_kv { 0 } else { prompt },
            decoded: 0,
            resident_tokens: 0,
            reserved_bytes: 0,
        };
        // A sequence whose full footprint can never fit is dropped at
        // the door — admitting it would deadlock the preemption loop.
        let max_bytes =
            (self.prompt_kv_tokens(&seq) + seq.output as u64) * self.curve.kv_bytes_per_token;
        if max_bytes > self.gpus[0].ledger.budget_bytes {
            self.stats.dropped_oversized += 1;
        } else {
            let slot = match self.free_slots.pop() {
                Some(s) => {
                    self.slots[s as usize] = seq;
                    s
                }
                None => {
                    self.slots.push(seq);
                    (self.slots.len() - 1) as u32
                }
            };
            // Join the shortest queue (waiting + running), lowest GPU
            // index on ties — deterministic least-outstanding routing.
            let gpu = (0..self.gpus.len())
                .min_by_key(|&g| self.gpus[g].waiting.len() + self.gpus[g].running.len())
                .expect("at least one GPU");
            self.gpus[gpu].waiting.push_back(slot);
            if !self.gpus[gpu].stepping {
                self.plan(gpu, t);
            }
        }
        let next = self.arrivals.next_after(t);
        let more = self
            .cfg
            .max_requests
            .is_none_or(|cap| self.stats.arrivals < cap);
        if next < self.cfg.duration_s && more {
            self.queue.schedule(next, Event::Arrival);
        }
    }

    /// Retires finished sequences, admits waiting ones, plans and
    /// launches the next iteration on `gpu`. Called at every iteration
    /// boundary (and on arrival to an idle GPU).
    fn plan(&mut self, gpu: usize, now: f64) {
        self.retire(gpu, now);
        let admit_wait_max = self.admit(gpu, now);

        // Plan the iteration's work; re-plan after every preemption
        // until the KV growth fits the budget.
        let bpt = self.curve.kv_bytes_per_token;
        loop {
            self.decode_members.clear();
            self.prefill_work.clear();
            let g = &self.gpus[gpu];
            let mut prefill_budget = self.cfg.chunk_tokens as u32;
            let prefill_pending = g.running.iter().any(|&s| {
                let q = &self.slots[s as usize];
                q.prefilled < q.prompt
            });
            let decode_allowed = !(self.cfg.priority == PhasePriority::Prefill && prefill_pending);
            let mut growth_tokens: u64 = 0;
            for &s in &g.running {
                let q = &self.slots[s as usize];
                if q.prefilled < q.prompt {
                    if prefill_budget > 0 {
                        let take = (q.prompt - q.prefilled).min(prefill_budget);
                        self.prefill_work.push((s, q.prefilled, q.prefilled + take));
                        prefill_budget -= take;
                        growth_tokens += take as u64;
                    }
                } else if decode_allowed && q.decoded < q.output {
                    self.decode_members.push(s);
                    growth_tokens +=
                        (self.curve.tokens_per_step as u32).min(q.output - q.decoded) as u64;
                }
            }
            if self.gpus[gpu].ledger.fits(growth_tokens * bpt) {
                break;
            }
            self.preempt_youngest(gpu);
        }

        if self.decode_members.is_empty() && self.prefill_work.is_empty() {
            // Idle: running is empty (or exclusively prefill-starved,
            // impossible since chunk_tokens > 0) and nothing waited.
            debug_assert!(self.gpus[gpu].running.is_empty());
            return;
        }

        // Apply the iteration: advance counters, grow the cache, price
        // the step, and schedule the boundary.
        let mut iter_s = 0.0;
        let mut growth_bytes: u64 = 0;
        let mut decode_tokens: u64 = 0;
        let mut ctx_sum: u64 = 0;
        for &(s, from, to) in &self.prefill_work {
            iter_s += self.curve.prefill_chunk_s(from as usize, to as usize);
            let q = &mut self.slots[s as usize];
            q.prefilled = to;
            let grown = (to - from) as u64;
            q.resident_tokens += grown;
            growth_bytes += grown * bpt;
            self.stats.prefilled_tokens += grown;
        }
        let n_decode = self.decode_members.len();
        for i in 0..n_decode {
            let s = self.decode_members[i];
            let prompt_kv = self.prompt_kv_tokens_of(s);
            let q = &mut self.slots[s as usize];
            ctx_sum += prompt_kv + q.decoded as u64;
            let new = (self.curve.tokens_per_step as u32).min(q.output - q.decoded);
            q.decoded += new;
            q.resident_tokens += new as u64;
            growth_bytes += new as u64 * bpt;
            decode_tokens += new as u64;
        }
        if n_decode > 0 {
            let mean_ctx = ctx_sum as f64 / n_decode as f64;
            iter_s += self.curve.step_s(n_decode, mean_ctx);
            self.stats.decode_batch_sum += n_decode as u64;
            self.stats.decode_iterations += 1;
        }
        self.stats.decoded_tokens += decode_tokens;
        self.stats.iterations += 1;

        let ledger = &mut self.gpus[gpu].ledger;
        ledger.alloc(growth_bytes);
        // The conservation invariant, per GPU, per iteration.
        ledger.assert_conserved();
        #[cfg(debug_assertions)]
        {
            let resident: u64 = self.gpus[gpu]
                .running
                .iter()
                .map(|&s| self.slots[s as usize].resident_tokens * bpt)
                .sum();
            debug_assert_eq!(resident, self.gpus[gpu].ledger.resident_bytes);
        }

        debug_assert!(iter_s > 0.0, "an iteration with work must take time");
        let finish = now + iter_s;
        // First-token instants land at the end of the iteration that
        // produced them.
        for i in 0..n_decode {
            let s = self.decode_members[i];
            let q = &mut self.slots[s as usize];
            if q.first_token_s < 0.0 && q.decoded > 0 {
                q.first_token_s = finish;
            }
        }
        let g = &mut self.gpus[gpu];
        g.busy_s += iter_s;
        g.stepping = true;
        let queued_left = g.waiting.len();
        let members = n_decode + self.prefill_work.len();
        if let Some(f) = self.flight.as_mut() {
            f.on_launch(
                gpu,
                self.cfg.model,
                members,
                now,
                finish,
                admit_wait_max,
                queued_left,
                false,
                // The token-level sim has no power model yet; its flight
                // windows stay unmetered.
                0.0,
            );
        }
        self.queue.schedule(finish, Event::Step { gpu: gpu as u32 });
    }

    fn prompt_kv_tokens_of(&self, slot: u32) -> u64 {
        if self.has_prompt_kv {
            self.slots[slot as usize].prompt as u64
        } else {
            0
        }
    }

    fn retire(&mut self, gpu: usize, now: f64) {
        let mut i = 0;
        while i < self.gpus[gpu].running.len() {
            let slot = self.gpus[gpu].running[i];
            let q = self.slots[slot as usize];
            if q.decoded < q.output {
                i += 1;
                continue;
            }
            self.gpus[gpu].running.remove(i);
            let ledger = &mut self.gpus[gpu].ledger;
            ledger.free(q.resident_tokens * self.curve.kv_bytes_per_token);
            ledger.unreserve(q.reserved_bytes);
            let queue_s = q.admitted_s - q.arrival_s;
            let ttft_s = q.first_token_s - q.arrival_s;
            let tpot_s = (now - q.first_token_s) / f64::from((q.output - 1).max(1));
            let e2e_s = now - q.arrival_s;
            let on_time = ttft_s <= self.cfg.slo.ttft_s && tpot_s <= self.cfg.slo.tpot_s;
            self.stats.completed += 1;
            self.stats.on_time += u64::from(on_time);
            self.stats.phases.observe(queue_s, ttft_s, tpot_s, e2e_s);
            self.ttft_hist.observe(ttft_s);
            self.tpot_hist.observe(tpot_s);
            if let Some(f) = self.flight.as_mut() {
                f.on_complete(now, e2e_s, on_time);
            }
            self.free_slots.push(slot);
        }
    }

    /// Admits waiting sequences at an iteration boundary; returns the
    /// longest wait among the newly admitted (for the flight lane).
    fn admit(&mut self, gpu: usize, now: f64) -> f64 {
        if matches!(self.cfg.batching, TokenBatching::Static { .. })
            && !self.gpus[gpu].running.is_empty()
        {
            return 0.0; // static batching: drain fully before re-admitting
        }
        let cap = self.cfg.batching.cap();
        let mut wait_max = 0.0f64;
        while self.gpus[gpu].running.len() < cap {
            let Some(&slot) = self.gpus[gpu].waiting.front() else {
                break;
            };
            let demand = self.admission_demand(&self.slots[slot as usize]);
            if !self.gpus[gpu].ledger.can_admit(demand) {
                break; // cache-aware admission: head-of-line blocks
            }
            self.gpus[gpu].waiting.pop_front();
            self.gpus[gpu].ledger.reserve(demand);
            let q = &mut self.slots[slot as usize];
            q.reserved_bytes = demand;
            if q.admitted_s < 0.0 {
                q.admitted_s = now;
                wait_max = wait_max.max(now - q.arrival_s);
            }
            self.gpus[gpu].running.push(slot);
        }
        wait_max
    }

    /// Evicts the youngest running sequence for recompute. The oldest
    /// sequence is never preempted, which guarantees forward progress
    /// (its full footprint fits the budget by the arrival-time check).
    fn preempt_youngest(&mut self, gpu: usize) {
        let g = &mut self.gpus[gpu];
        assert!(
            g.running.len() > 1,
            "single sequence cannot outgrow the budget (oversized arrivals are dropped)"
        );
        let slot = g.running.pop().expect("non-empty running set");
        let q = &mut self.slots[slot as usize];
        g.ledger.free(q.resident_tokens * self.curve.kv_bytes_per_token);
        g.ledger.unreserve(q.reserved_bytes);
        g.ledger.count_preemption();
        // Eviction-and-recompute: all progress is lost; the sequence
        // re-enters at the head of the queue and replays prefill and
        // decode (TTFT keeps the first delivery instant).
        q.resident_tokens = 0;
        q.reserved_bytes = 0;
        q.decoded = 0;
        q.prefilled = if self.has_prompt_kv { 0 } else { q.prompt };
        g.waiting.push_front(slot);
    }

    fn publish(&self, registry: &Registry) {
        let model = model_short_name(self.cfg.model);
        let labels: &[(&str, &str)] = &[("model", model)];
        registry.describe("serve_token_requests_total", "token-serving arrivals");
        registry.describe("serve_token_completed_total", "token-serving completions");
        registry.describe(
            "serve_token_dropped_total",
            "arrivals dropped because one sequence exceeds the KV budget",
        );
        registry.describe("serve_token_decoded_tokens_total", "output tokens decoded");
        registry.describe(
            "serve_token_prefill_tokens_total",
            "prompt tokens prefilled (recompute counts again)",
        );
        registry.describe("serve_token_iterations_total", "decode iterations executed");
        registry.describe(
            "serve_kv_preemptions_total",
            "sequences evicted for recompute under KV-cache pressure",
        );
        registry.describe("serve_kv_bytes_allocated_total", "cumulative KV bytes allocated");
        registry.describe("serve_kv_bytes_freed_total", "cumulative KV bytes freed");
        registry.describe("serve_kv_peak_bytes", "per-GPU peak resident KV bytes");
        registry.describe("serve_kv_resident_bytes", "per-GPU final resident KV bytes");
        registry.describe("serve_token_ttft_s", "time-to-first-token, seconds");
        registry.describe("serve_token_tpot_s", "time-per-output-token, seconds");
        registry.describe("serve_token_gpu_utilization", "per-GPU busy fraction");
        let s = &self.stats;
        registry.counter_with("serve_token_requests_total", labels).add(s.arrivals);
        registry.counter_with("serve_token_completed_total", labels).add(s.completed);
        registry.counter_with("serve_token_dropped_total", labels).add(s.dropped_oversized);
        registry
            .counter_with("serve_token_decoded_tokens_total", labels)
            .add(s.decoded_tokens);
        registry
            .counter_with("serve_token_prefill_tokens_total", labels)
            .add(s.prefilled_tokens);
        registry.counter_with("serve_token_iterations_total", labels).add(s.iterations);
        let preemptions: u64 = self.gpus.iter().map(|g| g.ledger.preemptions).sum();
        registry.counter_with("serve_kv_preemptions_total", labels).add(preemptions);
        let allocated: u64 = self.gpus.iter().map(|g| g.ledger.allocated_total).sum();
        let freed: u64 = self.gpus.iter().map(|g| g.ledger.freed_total).sum();
        registry.counter_with("serve_kv_bytes_allocated_total", labels).add(allocated);
        registry.counter_with("serve_kv_bytes_freed_total", labels).add(freed);
        for (i, g) in self.gpus.iter().enumerate() {
            let gpu = i.to_string();
            let glabels: &[(&str, &str)] = &[("gpu", &gpu)];
            registry
                .gauge_with("serve_kv_peak_bytes", glabels)
                .set(g.ledger.peak_resident_bytes as f64);
            registry
                .gauge_with("serve_kv_resident_bytes", glabels)
                .set(g.ledger.resident_bytes as f64);
            registry
                .gauge_with("serve_token_gpu_utilization", glabels)
                .set(g.busy_s / self.end_s.max(1e-9));
        }
    }
}

/// Runs a token-serving scenario against a service curve, streaming
/// telemetry into `registry`. Deterministic: one seed fixes the whole
/// sample path.
///
/// # Panics
///
/// Panics on an invalid scenario ([`TokenScenarioCfg::validate`]) or a
/// curve/model mismatch.
#[must_use]
pub fn simulate_token(
    cfg: &TokenScenarioCfg,
    curve: &TokenServiceCurve,
    kv_budget_bytes: u64,
    registry: &Registry,
) -> TokenSimResult {
    cfg.validate();
    assert_eq!(cfg.model, curve.model, "scenario/curve model mismatch");
    TokenSim::new(cfg, curve, kv_budget_bytes, registry, None).run(registry).0
}

/// Like [`simulate_token`] with the flight recorder attached: iteration
/// batches land on per-GPU lanes, arrivals/completions on the cluster
/// lane.
#[must_use]
pub fn simulate_token_recorded(
    cfg: &TokenScenarioCfg,
    curve: &TokenServiceCurve,
    kv_budget_bytes: u64,
    registry: &Registry,
    flight_cfg: FlightCfg,
) -> (TokenSimResult, FlightRecorder) {
    cfg.validate();
    assert_eq!(cfg.model, curve.model, "scenario/curve model mismatch");
    let recorder = FlightRecorder::new(flight_cfg, cfg.gpus);
    let (result, flight) =
        TokenSim::new(cfg, curve, kv_budget_bytes, registry, Some(recorder)).run(registry);
    (result, flight.expect("recorder attached"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built curve with llama-like shape: decode amortizes with
    /// batch, grows with context; prefill is ~linear. Keeps engine
    /// tests free of profiler cost.
    fn toy_curve() -> TokenServiceCurve {
        TokenServiceCurve {
            model: ModelId::Llama2,
            batch_knots: vec![1, 8, 32],
            ctx_knots: vec![128, 1024],
            step_s: vec![vec![0.005, 0.008, 0.014], vec![0.006, 0.010, 0.020]],
            prefill_s: vec![(512, 0.04), (2048, 0.20)],
            tokens_per_step: 1,
            fixed_output_tokens: None,
            kv_bytes_per_token: 512 * 1024,
            weight_bytes: 14 << 30,
        }
    }

    fn base_cfg(batching: TokenBatching, seed: u64) -> TokenScenarioCfg {
        TokenScenarioCfg {
            gpus: 2,
            model: ModelId::Llama2,
            arrival: ArrivalProcess::poisson(20.0),
            batching,
            priority: PhasePriority::Decode,
            admission: KvAdmission::Prompt,
            chunk_tokens: 256,
            prompt: LengthDist::new(512.0, 0.3, 16, 4096),
            output: LengthDist::new(128.0, 0.3, 4, 1024),
            slo: TokenSlo { ttft_s: 0.5, tpot_s: 0.05 },
            duration_s: 60.0,
            max_requests: None,
            seed,
        }
    }

    const AMPLE: u64 = 64 << 30;

    #[test]
    fn run_completes_and_conserves_kv() {
        let cfg = base_cfg(TokenBatching::Continuous { max_batch: 16 }, 7);
        let reg = Registry::new();
        let r = simulate_token(&cfg, &toy_curve(), AMPLE, &reg);
        assert!(r.stats.arrivals > 500, "arrivals: {}", r.stats.arrivals);
        assert_eq!(r.stats.completed + r.stats.dropped_oversized, r.stats.arrivals);
        assert!(r.stats.decoded_tokens > 10_000);
        // After the drain every byte allocated was freed, per GPU.
        for l in &r.kv {
            l.assert_conserved();
            assert_eq!(l.resident_bytes, 0, "cache must drain");
            assert_eq!(l.allocated_total, l.freed_total);
            assert!(l.peak_resident_bytes > 0);
        }
        // Phase sketches are populated and ordered sanely.
        let p = &r.stats.phases;
        assert_eq!(p.e2e.count(), r.stats.completed);
        assert!(p.ttft.quantile(0.5).unwrap() > 0.0);
        assert!(p.tpot.quantile(0.5).unwrap() > 0.0);
        assert!(r.utilization() > 0.05 && r.utilization() <= 1.0);
        assert_eq!(
            reg.counter_with("serve_token_completed_total", &[("model", "llama")]).get(),
            r.stats.completed
        );
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let cfg = base_cfg(TokenBatching::Continuous { max_batch: 16 }, 11);
        let a = simulate_token(&cfg, &toy_curve(), AMPLE, &Registry::new());
        let b = simulate_token(&cfg, &toy_curve(), AMPLE, &Registry::new());
        assert_eq!(a.stats.arrivals, b.stats.arrivals);
        assert_eq!(a.stats.decoded_tokens, b.stats.decoded_tokens);
        assert_eq!(a.stats.iterations, b.stats.iterations);
        assert_eq!(
            a.stats.phases.e2e_sum_s.to_bits(),
            b.stats.phases.e2e_sum_s.to_bits(),
            "sample paths diverged"
        );
        let c =
            simulate_token(&base_cfg(TokenBatching::Continuous { max_batch: 16 }, 12), &toy_curve(), AMPLE, &Registry::new());
        assert_ne!(
            a.stats.phases.e2e_sum_s.to_bits(),
            c.stats.phases.e2e_sum_s.to_bits(),
            "different seeds must diverge"
        );
    }

    #[test]
    fn tight_budget_preempts_and_recovers() {
        // ~24 MiB ≈ 48 sequences of KV? No: 512 KiB/token × ~640
        // tokens ≈ 320 MiB per sequence. A 1 GiB budget fits ~3
        // concurrent sequences — decode growth under Prompt admission
        // must hit the ceiling and preempt.
        let mut cfg = base_cfg(TokenBatching::Continuous { max_batch: 16 }, 5);
        cfg.duration_s = 30.0;
        let tight = 1 << 30;
        let r = simulate_token(&cfg, &toy_curve(), tight, &Registry::new());
        assert!(r.preemptions() > 0, "tight budget must preempt");
        assert_eq!(r.stats.completed + r.stats.dropped_oversized, r.stats.arrivals);
        for l in &r.kv {
            l.assert_conserved();
            assert_eq!(l.resident_bytes, 0);
        }
        // Reserve admission never preempts, even under the same
        // pressure — it pays with queueing instead.
        cfg.admission = KvAdmission::Reserve;
        let rr = simulate_token(&cfg, &toy_curve(), tight, &Registry::new());
        assert_eq!(rr.preemptions(), 0, "reserve admission cannot preempt");
        // Ample budget: no preemptions either.
        cfg.admission = KvAdmission::Prompt;
        let ra = simulate_token(&cfg, &toy_curve(), AMPLE, &Registry::new());
        assert_eq!(ra.preemptions(), 0, "ample budget must not preempt");
    }

    #[test]
    fn oversized_sequences_drop_at_the_door() {
        let mut cfg = base_cfg(TokenBatching::Continuous { max_batch: 8 }, 3);
        cfg.duration_s = 10.0;
        // Budget below one median sequence's footprint: most arrivals
        // can never fit and must be counted out, not deadlock.
        let r = simulate_token(&cfg, &toy_curve(), 100 << 20, &Registry::new());
        assert!(r.stats.dropped_oversized > 0);
        assert_eq!(r.stats.completed + r.stats.dropped_oversized, r.stats.arrivals);
    }

    #[test]
    fn continuous_batching_beats_static_on_goodput_under_load() {
        let seed = 21;
        let cont = simulate_token(
            &base_cfg(TokenBatching::Continuous { max_batch: 16 }, seed),
            &toy_curve(),
            AMPLE,
            &Registry::new(),
        );
        let stat = simulate_token(
            &base_cfg(TokenBatching::Static { batch: 16 }, seed),
            &toy_curve(),
            AMPLE,
            &Registry::new(),
        );
        assert!(
            cont.goodput_rps() > stat.goodput_rps(),
            "continuous {} vs static {}",
            cont.goodput_rps(),
            stat.goodput_rps()
        );
        // Static batching's run-to-completion inflates TTFT.
        let c_ttft = cont.stats.phases.ttft.quantile(0.95).unwrap();
        let s_ttft = stat.stats.phases.ttft.quantile(0.95).unwrap();
        assert!(c_ttft < s_ttft, "p95 TTFT: continuous {c_ttft} vs static {s_ttft}");
    }

    #[test]
    fn prefill_priority_trades_tpot_for_ttft() {
        let mut cfg = base_cfg(TokenBatching::Continuous { max_batch: 16 }, 9);
        cfg.priority = PhasePriority::Prefill;
        let pf = simulate_token(&cfg, &toy_curve(), AMPLE, &Registry::new());
        cfg.priority = PhasePriority::Decode;
        let df = simulate_token(&cfg, &toy_curve(), AMPLE, &Registry::new());
        let pf_ttft = pf.stats.phases.ttft.quantile(0.5).unwrap();
        let df_ttft = df.stats.phases.ttft.quantile(0.5).unwrap();
        assert!(
            pf_ttft <= df_ttft * 1.05,
            "prefill priority should not worsen median TTFT: {pf_ttft} vs {df_ttft}"
        );
    }

    #[test]
    fn fixed_output_models_ignore_the_sampler() {
        let mut curve = toy_curve();
        curve.model = ModelId::Muse;
        curve.prefill_s = Vec::new(); // conditioning outside the cache
        curve.tokens_per_step = 11;
        curve.fixed_output_tokens = Some(256);
        let mut cfg = base_cfg(TokenBatching::Continuous { max_batch: 8 }, 13);
        cfg.model = ModelId::Muse;
        cfg.duration_s = 20.0;
        cfg.arrival = ArrivalProcess::poisson(10.0);
        let r = simulate_token(&cfg, &curve, AMPLE, &Registry::new());
        assert!(r.stats.completed > 50);
        assert_eq!(r.stats.decoded_tokens, 256 * r.stats.completed);
        assert_eq!(r.stats.prefilled_tokens, 0, "no prompt phase");
        for l in &r.kv {
            l.assert_conserved();
            assert_eq!(l.resident_bytes, 0);
        }
    }

    #[test]
    fn recorder_lanes_fill_and_replay() {
        let cfg = base_cfg(TokenBatching::Continuous { max_batch: 16 }, 17);
        let (r, flight) = simulate_token_recorded(
            &cfg,
            &toy_curve(),
            AMPLE,
            &Registry::new(),
            FlightCfg::for_horizon(60.0),
        );
        assert!(r.stats.completed > 0);
        let trace = flight.to_chrome_trace_object();
        assert!(trace.contains("traceEvents"));
        let (_, flight2) = simulate_token_recorded(
            &cfg,
            &toy_curve(),
            AMPLE,
            &Registry::new(),
            FlightCfg::for_horizon(60.0),
        );
        assert_eq!(trace, flight2.to_chrome_trace_object(), "trace must replay");
    }

    #[test]
    fn parse_helpers_round_trip() {
        assert_eq!(
            TokenBatching::parse("static", 8).unwrap(),
            TokenBatching::Static { batch: 8 }
        );
        assert_eq!(
            TokenBatching::parse("continuous", 32).unwrap(),
            TokenBatching::Continuous { max_batch: 32 }
        );
        assert!(TokenBatching::parse("dynamic", 8).is_err());
        assert_eq!(PhasePriority::parse("decode").unwrap(), PhasePriority::Decode);
        assert_eq!(PhasePriority::parse("PREFILL").unwrap(), PhasePriority::Prefill);
        assert!(PhasePriority::parse("both").is_err());
        assert_eq!(TokenBatching::Continuous { max_batch: 4 }.cap(), 4);
        assert_eq!(TokenBatching::Static { batch: 2 }.name(), "static");
    }
}
