//! Workload generators: arrival processes and the request model mix.
//!
//! Three arrival processes cover the serving regimes the paper's fleet
//! data motivates: steady [`ArrivalProcess::Poisson`] traffic, bursty
//! Markov-modulated on/off traffic (flash crowds), and a diurnal
//! sinusoidal rate (the day/night cycle of a production fleet, with the
//! period compressed to simulation scale). All sampling is driven by a
//! seeded [`StdRng`] — the same seed always produces the same arrival
//! sample path.

use mmg_models::ModelId;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arrival process with a configurable mean offered rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate_rps: f64,
    },
    /// Markov-modulated on/off arrivals: bursts at `burst_factor` times
    /// the mean rate alternate with quieter phases, with exponentially
    /// distributed phase sojourns. The quiet-phase rate is solved so the
    /// long-run mean stays `rate_rps` (clamped at zero when the burst
    /// factor saturates the duty cycle).
    Bursty {
        /// Long-run mean arrival rate, requests/second.
        rate_rps: f64,
        /// Burst-phase rate multiplier (≥ 1).
        burst_factor: f64,
        /// Mean burst-phase duration, seconds.
        mean_burst_s: f64,
        /// Mean quiet-phase duration, seconds.
        mean_idle_s: f64,
    },
    /// Sinusoidally modulated rate `λ(t) = rate·(1 + amp·sin(2π(t+φ)/T))`,
    /// sampled by thinning against the peak rate. The phase offset `φ`
    /// shifts the cycle in time — a fleet places each region's diurnal
    /// peak at a different wall-clock offset.
    Diurnal {
        /// Mean arrival rate, requests/second.
        rate_rps: f64,
        /// Relative modulation amplitude in `[0, 1)`.
        amplitude: f64,
        /// Cycle period, seconds.
        period_s: f64,
        /// Phase offset `φ`, seconds (0 = peak at `T/4`).
        phase_s: f64,
    },
}

impl ArrivalProcess {
    /// A Poisson process at `rate_rps`.
    #[must_use]
    pub fn poisson(rate_rps: f64) -> Self {
        ArrivalProcess::Poisson { rate_rps }
    }

    /// The default bursty shape at a given mean rate: 3x bursts lasting
    /// 5 s on average, separated by 10 s quiet phases on average.
    #[must_use]
    pub fn bursty(rate_rps: f64) -> Self {
        ArrivalProcess::Bursty {
            rate_rps,
            burst_factor: 3.0,
            mean_burst_s: 5.0,
            mean_idle_s: 10.0,
        }
    }

    /// The default diurnal shape at a given mean rate: ±60% modulation
    /// over a 120 s simulated "day", zero phase offset.
    #[must_use]
    pub fn diurnal(rate_rps: f64) -> Self {
        ArrivalProcess::Diurnal { rate_rps, amplitude: 0.6, period_s: 120.0, phase_s: 0.0 }
    }

    /// The same process with a diurnal phase offset applied (identity
    /// for non-diurnal processes, which have no phase to shift).
    #[must_use]
    pub fn with_phase(self, new_phase_s: f64) -> Self {
        match self {
            ArrivalProcess::Diurnal { rate_rps, amplitude, period_s, .. } => {
                ArrivalProcess::Diurnal { rate_rps, amplitude, period_s, phase_s: new_phase_s }
            }
            other => other,
        }
    }

    /// Builds the named default shape (`poisson` | `bursty` | `diurnal`)
    /// at a mean rate.
    pub fn parse(name: &str, rate_rps: f64) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "poisson" => Ok(ArrivalProcess::poisson(rate_rps)),
            "bursty" => Ok(ArrivalProcess::bursty(rate_rps)),
            "diurnal" => Ok(ArrivalProcess::diurnal(rate_rps)),
            other => Err(format!(
                "unknown arrival process '{other}'; expected poisson | bursty | diurnal"
            )),
        }
    }

    /// Long-run mean arrival rate, requests/second.
    #[must_use]
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps }
            | ArrivalProcess::Bursty { rate_rps, .. }
            | ArrivalProcess::Diurnal { rate_rps, .. } => rate_rps,
        }
    }

    /// The same process with its mean rate replaced.
    #[must_use]
    pub fn with_rate(self, new_rate_rps: f64) -> Self {
        match self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_rps: new_rate_rps },
            ArrivalProcess::Bursty { burst_factor, mean_burst_s, mean_idle_s, .. } => {
                ArrivalProcess::Bursty {
                    rate_rps: new_rate_rps,
                    burst_factor,
                    mean_burst_s,
                    mean_idle_s,
                }
            }
            ArrivalProcess::Diurnal { amplitude, period_s, phase_s, .. } => {
                ArrivalProcess::Diurnal { rate_rps: new_rate_rps, amplitude, period_s, phase_s }
            }
        }
    }
}

/// Stateful arrival-time sampler for one [`ArrivalProcess`].
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: StdRng,
    uniform: Uniform<f64>,
    /// Bursty state: currently in the burst phase, and when it ends.
    in_burst: bool,
    phase_end_s: f64,
}

impl ArrivalGen {
    /// A sampler for `process` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates or degenerate shape parameters.
    #[must_use]
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        match process {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "arrival rate must be positive");
            }
            ArrivalProcess::Bursty { rate_rps, burst_factor, mean_burst_s, mean_idle_s } => {
                assert!(rate_rps > 0.0, "arrival rate must be positive");
                assert!(burst_factor >= 1.0, "burst factor must be >= 1");
                assert!(
                    mean_burst_s > 0.0 && mean_idle_s > 0.0,
                    "phase durations must be positive"
                );
            }
            ArrivalProcess::Diurnal { rate_rps, amplitude, period_s, phase_s } => {
                assert!(rate_rps > 0.0, "arrival rate must be positive");
                assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
                assert!(period_s > 0.0, "period must be positive");
                assert!(phase_s.is_finite(), "phase offset must be finite");
            }
        }
        ArrivalGen {
            process,
            rng: StdRng::seed_from_u64(seed),
            uniform: Uniform::new(f64::EPSILON, 1.0),
            in_burst: false,
            phase_end_s: 0.0,
        }
    }

    /// One exponential variate with the given rate.
    fn exp(&mut self, rate: f64) -> f64 {
        let u: f64 = self.uniform.sample(&mut self.rng);
        -u.ln() / rate
    }

    /// Burst-phase and quiet-phase rates for the bursty process. The
    /// quiet rate solves `p·hi + (1−p)·lo = rate` for the burst duty
    /// cycle `p`, clamped at zero.
    fn bursty_rates(rate: f64, factor: f64, burst_s: f64, idle_s: f64) -> (f64, f64) {
        let hi = rate * factor;
        let p = burst_s / (burst_s + idle_s);
        let lo = ((rate - p * hi) / (1.0 - p)).max(0.0);
        (hi, lo)
    }

    /// The first arrival strictly after virtual time `t_s`.
    pub fn next_after(&mut self, t_s: f64) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate_rps } => t_s + self.exp(rate_rps),
            ArrivalProcess::Bursty { rate_rps, burst_factor, mean_burst_s, mean_idle_s } => {
                let (hi, lo) = Self::bursty_rates(rate_rps, burst_factor, mean_burst_s, mean_idle_s);
                let mut t = t_s;
                loop {
                    if t >= self.phase_end_s {
                        // Phase transition; exponential sojourns make the
                        // carried-over candidate memoryless, so redrawing
                        // from the phase boundary is exact.
                        self.in_burst = !self.in_burst;
                        let mean = if self.in_burst { mean_burst_s } else { mean_idle_s };
                        self.phase_end_s = t + self.exp(1.0 / mean);
                    }
                    let rate = if self.in_burst { hi } else { lo };
                    if rate <= 0.0 {
                        t = self.phase_end_s;
                        continue;
                    }
                    let candidate = t + self.exp(rate);
                    if candidate <= self.phase_end_s {
                        return candidate;
                    }
                    t = self.phase_end_s;
                }
            }
            ArrivalProcess::Diurnal { rate_rps, amplitude, period_s, phase_s } => {
                // Thinning (Lewis–Shedler) against the peak rate. This
                // loop is on the fleet fast lane's critical path, so the
                // divisions are hoisted to reciprocals and the sine
                // argument is range-reduced to one cycle (floor + small
                // argument) instead of handing libm a huge angle.
                let inv_peak = 1.0 / (rate_rps * (1.0 + amplitude));
                let inv_period = 1.0 / period_s;
                let one_plus_a = 1.0 + amplitude;
                let mut t = t_s;
                loop {
                    let e: f64 = self.uniform.sample(&mut self.rng);
                    t -= e.ln() * inv_peak;
                    let cycles = (t + phase_s) * inv_period;
                    let s = (2.0 * std::f64::consts::PI * (cycles - cycles.floor())).sin();
                    let u: f64 = self.uniform.sample(&mut self.rng);
                    // Accept iff u·peak < λ(t); both sides divided by the
                    // base rate.
                    if u * one_plus_a < 1.0 + amplitude * s {
                        return t;
                    }
                }
            }
        }
    }
}

/// A clamped lognormal distribution over token (or frame) counts.
///
/// Request lengths in production LLM traces are heavy-tailed and
/// right-skewed; a lognormal parameterized by its *median* matches the
/// published prompt/output histograms well and keeps the knob intuitive
/// (`median` is the 50th percentile in tokens, `sigma` the log-space
/// spread). Samples are rounded to the nearest integer and clamped to
/// `[min, max]`, so the tail cannot exceed a model's context window.
/// Shared by the token-level serving engine and reusable by future
/// frame-count samplers for video workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthDist {
    /// Median length, tokens (the lognormal's `exp(μ)`).
    pub median: f64,
    /// Log-space standard deviation (`0` = deterministic `median`).
    pub sigma: f64,
    /// Inclusive lower clamp, tokens (≥ 1).
    pub min: usize,
    /// Inclusive upper clamp, tokens.
    pub max: usize,
}

impl LengthDist {
    /// A clamped lognormal with the given median and log-space sigma.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive median, negative sigma, zero `min`, or
    /// an empty clamp interval.
    #[must_use]
    pub fn new(median: f64, sigma: f64, min: usize, max: usize) -> Self {
        assert!(median > 0.0, "length median must be positive");
        assert!(sigma >= 0.0, "length sigma cannot be negative");
        assert!(min >= 1, "minimum length must be at least 1 token");
        assert!(max >= min, "length clamp interval is empty ({min}..={max})");
        LengthDist { median, sigma, min, max }
    }

    /// A degenerate distribution: every sample is exactly `tokens`.
    #[must_use]
    pub fn fixed(tokens: usize) -> Self {
        LengthDist::new(tokens as f64, 0.0, tokens.max(1), tokens.max(1))
    }

    /// The unclamped lognormal mean, `median · exp(σ²/2)` — used as an
    /// analytic anchor when translating a target utilization into an
    /// offered rate (the clamp bias is second-order for the defaults).
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.median * (0.5 * self.sigma * self.sigma).exp())
            .clamp(self.min as f64, self.max as f64)
    }
}

/// Stateful seeded sampler for a [`LengthDist`].
///
/// Normal deviates come from a Box–Muller transform over two uniform
/// draws (the vendored `rand` stub carries no `Normal` distribution),
/// so the sample path is a pure function of `(dist, seed)` — the same
/// determinism contract as [`ArrivalGen`].
#[derive(Debug, Clone)]
pub struct LengthSampler {
    dist: LengthDist,
    rng: StdRng,
    uniform: Uniform<f64>,
}

impl LengthSampler {
    /// A sampler for `dist` seeded with `seed`.
    #[must_use]
    pub fn new(dist: LengthDist, seed: u64) -> Self {
        LengthSampler {
            dist,
            rng: StdRng::seed_from_u64(seed),
            uniform: Uniform::new(f64::EPSILON, 1.0),
        }
    }

    /// The distribution this sampler draws from.
    #[must_use]
    pub fn dist(&self) -> &LengthDist {
        &self.dist
    }

    /// Draws the next length, rounded and clamped to `[min, max]`.
    pub fn sample(&mut self) -> usize {
        // Two uniforms are consumed per sample even when sigma is zero,
        // so toggling sigma does not shift the rest of the sample path.
        let u1: f64 = self.uniform.sample(&mut self.rng);
        let u2: f64 = self.uniform.sample(&mut self.rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let len = self.dist.median * (self.dist.sigma * z).exp();
        (len.round() as usize).clamp(self.dist.min, self.dist.max)
    }
}

/// A weighted mix of suite models making up the request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMix {
    entries: Vec<(ModelId, f64)>,
    total_weight: f64,
}

/// The short CLI name of a suite model (`sd`, `parti`, `mav`, …).
#[must_use]
pub fn model_short_name(id: ModelId) -> &'static str {
    match id {
        ModelId::Llama2 => "llama",
        ModelId::Imagen => "imagen",
        ModelId::StableDiffusion => "sd",
        ModelId::Muse => "muse",
        ModelId::Parti => "parti",
        ModelId::ProdImage => "prod",
        ModelId::MakeAVideo => "mav",
        ModelId::Phenaki => "phenaki",
    }
}

/// Parses a short model name (the inverse of [`model_short_name`]; full
/// display names are accepted too, case-insensitively).
pub fn parse_model(name: &str) -> Result<ModelId, String> {
    let lower = name.to_lowercase();
    ModelId::ALL
        .iter()
        .find(|&&id| {
            model_short_name(id) == lower || id.to_string().to_lowercase() == lower
        })
        .copied()
        .ok_or_else(|| {
            let names: Vec<&str> = ModelId::ALL.iter().map(|&id| model_short_name(id)).collect();
            format!("unknown model '{name}'; expected one of {}", names.join(" | "))
        })
}

impl RequestMix {
    /// A mix from `(model, weight)` entries.
    ///
    /// # Panics
    ///
    /// Panics on an empty mix, non-positive weights, or duplicates.
    #[must_use]
    pub fn new(entries: Vec<(ModelId, f64)>) -> Self {
        assert!(!entries.is_empty(), "request mix cannot be empty");
        for (i, (id, w)) in entries.iter().enumerate() {
            assert!(*w > 0.0, "mix weight for {id} must be positive");
            assert!(
                entries[..i].iter().all(|(other, _)| other != id),
                "duplicate mix entry for {id}"
            );
        }
        let total_weight = entries.iter().map(|(_, w)| w).sum();
        RequestMix { entries, total_weight }
    }

    /// A single-model mix.
    #[must_use]
    pub fn single(id: ModelId) -> Self {
        RequestMix::new(vec![(id, 1.0)])
    }

    /// Parses `"sd:8,parti:2"` (weights default to 1 when omitted:
    /// `"sd,parti"`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (name, weight) = match part.split_once(':') {
                Some((n, w)) => {
                    let w: f64 = w
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad mix weight in '{part}'"))?;
                    (n.trim(), w)
                }
                None => (part.trim(), 1.0),
            };
            if weight <= 0.0 {
                return Err(format!("mix weight in '{part}' must be positive"));
            }
            entries.push((parse_model(name)?, weight));
        }
        if entries.is_empty() {
            return Err("empty request mix".to_string());
        }
        for (i, (id, _)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(other, _)| other == id) {
                return Err(format!("duplicate mix entry for {id}"));
            }
        }
        Ok(RequestMix::new(entries))
    }

    /// The `(model, weight)` entries, in declaration order.
    #[must_use]
    pub fn entries(&self) -> &[(ModelId, f64)] {
        &self.entries
    }

    /// The models in the mix, in declaration order.
    pub fn models(&self) -> impl Iterator<Item = ModelId> + '_ {
        self.entries.iter().map(|(id, _)| *id)
    }

    /// The probability share of one model.
    #[must_use]
    pub fn share(&self, id: ModelId) -> f64 {
        self.entries
            .iter()
            .find(|(m, _)| *m == id)
            .map_or(0.0, |(_, w)| w / self.total_weight)
    }

    /// Samples one model from a uniform variate `u ∈ [0, 1)`.
    #[must_use]
    pub fn sample(&self, u: f64) -> ModelId {
        self.entries[self.sample_index(u)].0
    }

    /// Like [`RequestMix::sample`], but returns the index into
    /// [`RequestMix::entries`] — the serving fast path uses the index to
    /// address pre-resolved per-model state (telemetry handles, service
    /// curves) without re-scanning the mix.
    #[must_use]
    pub fn sample_index(&self, u: f64) -> usize {
        let mut remaining = u.clamp(0.0, 1.0) * self.total_weight;
        for (i, (_, w)) in self.entries.iter().enumerate() {
            if remaining < *w {
                return i;
            }
            remaining -= w;
        }
        self.entries.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(process: ArrivalProcess, horizon_s: f64, seed: u64) -> f64 {
        let mut g = ArrivalGen::new(process, seed);
        let mut t = 0.0;
        let mut n = 0u64;
        loop {
            t = g.next_after(t);
            if t > horizon_s {
                return n as f64 / horizon_s;
            }
            n += 1;
        }
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        let rate = mean_rate(ArrivalProcess::poisson(5.0), 4000.0, 1);
        assert!((rate - 5.0).abs() / 5.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn bursty_preserves_the_long_run_mean() {
        let rate = mean_rate(ArrivalProcess::bursty(5.0), 8000.0, 2);
        assert!((rate - 5.0).abs() / 5.0 < 0.10, "rate {rate}");
    }

    #[test]
    fn diurnal_preserves_the_long_run_mean() {
        let rate = mean_rate(ArrivalProcess::diurnal(5.0), 8000.0, 3);
        assert!((rate - 5.0).abs() / 5.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn diurnal_phase_preserves_the_long_run_mean() {
        let rate = mean_rate(ArrivalProcess::diurnal(5.0).with_phase(30.0), 8000.0, 3);
        assert!((rate - 5.0).abs() / 5.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn diurnal_phase_shifts_the_peak() {
        // Fold arrivals mod the period into bins: the densest bin tracks
        // the sin peak, which phase φ moves from T/4 to T/4 − φ (mod T).
        let peak_bin = |phase_s: f64| {
            let period = 120.0;
            let process = ArrivalProcess::Diurnal {
                rate_rps: 50.0,
                amplitude: 0.9,
                period_s: period,
                phase_s,
            };
            let mut g = ArrivalGen::new(process, 7);
            let mut t = 0.0;
            let mut bins = [0u64; 12];
            for _ in 0..200_000 {
                t = g.next_after(t);
                bins[((t % period) / 10.0) as usize % 12] += 1;
            }
            bins.iter().enumerate().max_by_key(|(_, &n)| n).map(|(i, _)| i).unwrap()
        };
        // Phase 0 peaks at T/4 = 30 s → bin 3; phase T/2 shifts the peak
        // to T/4 − T/2 ≡ 90 s → bin 9. Allow ±1 bin of sampling noise.
        let p0 = peak_bin(0.0) as i64;
        let p_half = peak_bin(60.0) as i64;
        assert!((p0 - 3).abs() <= 1, "unphased peak bin {p0}");
        assert!((p_half - 9).abs() <= 1, "phased peak bin {p_half}");
    }

    #[test]
    fn with_phase_only_touches_diurnal() {
        assert_eq!(
            ArrivalProcess::poisson(2.0).with_phase(10.0),
            ArrivalProcess::poisson(2.0)
        );
        let shifted = ArrivalProcess::diurnal(2.0).with_phase(10.0);
        match shifted {
            ArrivalProcess::Diurnal { phase_s, .. } => assert_eq!(phase_s, 10.0),
            other => panic!("unexpected process {other:?}"),
        }
        // Rate changes preserve the phase.
        match shifted.with_rate(4.0) {
            ArrivalProcess::Diurnal { rate_rps, phase_s, .. } => {
                assert_eq!(rate_rps, 4.0);
                assert_eq!(phase_s, 10.0);
            }
            other => panic!("unexpected process {other:?}"),
        }
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        // Dispersion of per-window counts: Poisson ≈ 1, MMPP > 1.
        let dispersion = |process: ArrivalProcess| {
            let mut g = ArrivalGen::new(process, 4);
            let mut t = 0.0;
            let mut counts = vec![0u64; 2000];
            loop {
                t = g.next_after(t);
                let w = (t / 2.0) as usize;
                if w >= counts.len() {
                    break;
                }
                counts[w] += 1;
            }
            let n = counts.len() as f64;
            let mean = counts.iter().sum::<u64>() as f64 / n;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n;
            var / mean
        };
        let poisson = dispersion(ArrivalProcess::poisson(5.0));
        let bursty = dispersion(ArrivalProcess::bursty(5.0));
        assert!(bursty > 1.5 * poisson, "bursty {bursty} vs poisson {poisson}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        for process in [
            ArrivalProcess::poisson(10.0),
            ArrivalProcess::bursty(10.0),
            ArrivalProcess::diurnal(10.0),
        ] {
            let mut g = ArrivalGen::new(process, 5);
            let mut t = 0.0;
            for _ in 0..5000 {
                let next = g.next_after(t);
                assert!(next > t, "{process:?}: {next} <= {t}");
                t = next;
            }
        }
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        for process in [
            ArrivalProcess::poisson(3.0),
            ArrivalProcess::bursty(3.0),
            ArrivalProcess::diurnal(3.0),
        ] {
            let mut a = ArrivalGen::new(process, 9);
            let mut b = ArrivalGen::new(process, 9);
            let mut c = ArrivalGen::new(process, 10);
            let (mut ta, mut tb, mut tc) = (0.0, 0.0, 0.0);
            let mut diverged = false;
            for _ in 0..200 {
                ta = a.next_after(ta);
                tb = b.next_after(tb);
                tc = c.next_after(tc);
                assert_eq!(ta.to_bits(), tb.to_bits());
                diverged |= ta.to_bits() != tc.to_bits();
            }
            assert!(diverged, "{process:?}: seeds 9 and 10 coincide");
        }
    }

    #[test]
    fn mix_parses_and_samples_by_weight() {
        let mix = RequestMix::parse("sd:8,parti:2").unwrap();
        assert_eq!(mix.entries().len(), 2);
        assert!((mix.share(ModelId::StableDiffusion) - 0.8).abs() < 1e-12);
        assert_eq!(mix.sample(0.0), ModelId::StableDiffusion);
        assert_eq!(mix.sample(0.79), ModelId::StableDiffusion);
        assert_eq!(mix.sample(0.81), ModelId::Parti);
        assert_eq!(mix.sample(0.999), ModelId::Parti);
    }

    #[test]
    fn mix_defaults_weights_and_rejects_garbage() {
        let mix = RequestMix::parse("sd,muse").unwrap();
        assert!((mix.share(ModelId::Muse) - 0.5).abs() < 1e-12);
        assert!(RequestMix::parse("").is_err());
        assert!(RequestMix::parse("sd:0").is_err());
        assert!(RequestMix::parse("sd:8,sd:2").is_err());
        assert!(RequestMix::parse("notamodel:1").is_err());
    }

    #[test]
    fn model_short_names_round_trip() {
        for id in ModelId::ALL {
            assert_eq!(parse_model(model_short_name(id)).unwrap(), id);
            assert_eq!(parse_model(&id.to_string()).unwrap(), id);
        }
        assert!(parse_model("gpt").is_err());
    }

    #[test]
    fn length_sampler_is_deterministic_and_clamped() {
        let dist = LengthDist::new(512.0, 0.6, 16, 2048);
        let mut a = LengthSampler::new(dist, 7);
        let mut b = LengthSampler::new(dist, 7);
        let mut c = LengthSampler::new(dist, 8);
        let mut diverged = false;
        for _ in 0..2000 {
            let la = a.sample();
            assert_eq!(la, b.sample(), "same seed must replay the same lengths");
            diverged |= la != c.sample();
            assert!((16..=2048).contains(&la), "clamp violated: {la}");
        }
        assert!(diverged, "seeds 7 and 8 coincide");
    }

    #[test]
    fn length_sampler_median_lands_near_parameter() {
        let mut s = LengthSampler::new(LengthDist::new(128.0, 0.5, 1, 100_000), 42);
        let mut lens: Vec<usize> = (0..4000).map(|_| s.sample()).collect();
        lens.sort_unstable();
        let p50 = lens[lens.len() / 2] as f64;
        assert!(
            (p50 - 128.0).abs() < 16.0,
            "empirical median {p50} far from configured 128"
        );
        // Heavy right tail: the mean exceeds the median for sigma > 0.
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(mean > p50, "lognormal mean {mean} should exceed median {p50}");
    }

    #[test]
    fn length_sampler_sigma_zero_is_fixed() {
        let mut s = LengthSampler::new(LengthDist::fixed(256), 3);
        for _ in 0..50 {
            assert_eq!(s.sample(), 256);
        }
        assert!((LengthDist::fixed(256).mean() - 256.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clamp interval is empty")]
    fn length_dist_rejects_empty_clamp() {
        let _ = LengthDist::new(100.0, 0.1, 64, 32);
    }

    #[test]
    fn arrival_parse_names() {
        assert_eq!(
            ArrivalProcess::parse("poisson", 2.0).unwrap(),
            ArrivalProcess::poisson(2.0)
        );
        assert!(ArrivalProcess::parse("steady", 2.0).is_err());
        assert_eq!(ArrivalProcess::bursty(2.0).with_rate(4.0).mean_rate_rps(), 4.0);
    }
}
