//! Property-based tests for the serving DES: queueing-theory
//! invariants that must hold on every sample path, not just the ones
//! unit tests happen to pick.

use mmg_models::ModelId;
use mmg_serve::cluster::{simulate, ScenarioCfg, SchedulerKind, SloSpec};
use mmg_serve::profile::{ServiceCurve, ServiceProfile};
use mmg_serve::workload::{ArrivalProcess, RequestMix};
use mmg_telemetry::Registry;
use proptest::prelude::*;

fn profile(service_s: f64) -> ServiceProfile {
    ServiceProfile::new(vec![ServiceCurve::constant(ModelId::StableDiffusion, service_s)])
}

fn scenario(
    gpus: usize,
    rate: f64,
    scheduler: SchedulerKind,
    duration_s: f64,
    seed: u64,
) -> ScenarioCfg {
    ScenarioCfg::new(
        gpus,
        RequestMix::single(ModelId::StableDiffusion),
        ArrivalProcess::poisson(rate),
        scheduler,
        SloSpec::None,
        duration_s,
        seed,
    )
}

/// The vendored proptest stub only generates from ranges, so scheduler
/// variants are decoded from drawn integers.
fn scheduler_from(sel: usize, batch: usize, wait_s: f64) -> SchedulerKind {
    match sel % 4 {
        0 => SchedulerKind::Fifo,
        1 => SchedulerKind::Static { batch, wait_s },
        2 => SchedulerKind::Dynamic { max_batch: batch },
        _ => SchedulerKind::Pods { max_batch: batch },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Little's law, checked as an identity between two independent
    /// bookkeeping paths: the event-loop occupancy integral `∫n(t)dt`
    /// must equal the per-request sojourn sum (`L·T = λT·W`). Holds
    /// exactly on every sample path, not just in expectation.
    #[test]
    fn littles_law_identity(
        seed in 0u64..1_000,
        rate in 0.5f64..6.0,
        service_s in 0.05f64..0.8,
        gpus in 1usize..4,
        sel in 0usize..4,
        batch in 2usize..16,
        wait_s in 0.1f64..1.0,
    ) {
        let scheduler = scheduler_from(sel, batch, wait_s);
        let cfg = scenario(gpus, rate, scheduler, 60.0, seed);
        let r = simulate(&cfg, &profile(service_s), &Registry::new());
        let sojourn: f64 = r.records.iter().map(|rec| rec.latency_s()).sum();
        let tol = 1e-6 * sojourn.max(1.0);
        prop_assert!(
            (r.area_requests_s - sojourn).abs() < tol,
            "area {} vs sojourn {}", r.area_requests_s, sojourn
        );
    }

    /// Little's law in its statistical form on a stable FIFO server:
    /// time-average occupancy L equals λ·W measured over the same run.
    #[test]
    fn littles_law_statistical(seed in 0u64..200) {
        // ρ = 2.0 × 0.2 = 0.4 on one GPU: comfortably stable.
        let cfg = scenario(1, 2.0, SchedulerKind::Fifo, 400.0, seed);
        let r = simulate(&cfg, &profile(0.2), &Registry::new());
        let n = r.records.len() as f64;
        prop_assume!(n > 100.0);
        let big_l = r.area_requests_s / r.end_s;
        let lambda = n / r.end_s;
        let big_w = r.records.iter().map(|rec| rec.latency_s()).sum::<f64>() / n;
        let rel = (big_l - lambda * big_w).abs() / big_l.max(1e-9);
        prop_assert!(rel < 1e-6, "L {} vs λW {}", big_l, lambda * big_w);
    }

    /// Conservation: every arrival is accounted for — completed,
    /// dropped, or abandoned over the full run; completed-by-horizon
    /// plus in-flight-at-horizon over the truncated run.
    #[test]
    fn conservation(
        seed in 0u64..1_000,
        rate in 0.5f64..8.0,
        service_s in 0.05f64..1.0,
        gpus in 1usize..4,
        sel in 0usize..4,
        batch in 2usize..16,
        wait_s in 0.1f64..1.0,
        patience_sel in 0usize..2,
        patience in 0.5f64..3.0,
        cap_sel in 0usize..2,
        cap in 4usize..40,
    ) {
        let mut cfg = scenario(gpus, rate, scheduler_from(sel, batch, wait_s), 40.0, seed);
        cfg.abandon_after_s = (patience_sel == 1).then_some(patience);
        cfg.max_queue = (cap_sel == 1).then_some(cap);
        let r = simulate(&cfg, &profile(service_s), &Registry::new());
        prop_assert_eq!(
            r.arrivals,
            r.records.len() as u64 + r.dropped + r.abandoned,
            "full-run conservation"
        );
        if cfg.abandon_after_s.is_none() {
            let done_by_horizon =
                r.records.iter().filter(|rec| rec.finish_s < r.horizon_s).count() as u64;
            prop_assert_eq!(
                r.arrivals,
                done_by_horizon + r.dropped + r.in_flight_at_horizon,
                "horizon conservation"
            );
        }
    }

    /// One seed, one sample path: the full result (every record, every
    /// counter) is identical across repeated runs.
    #[test]
    fn determinism(
        seed in 0u64..1_000,
        rate in 0.5f64..6.0,
        gpus in 1usize..4,
        sel in 0usize..4,
        batch in 2usize..16,
        wait_s in 0.1f64..1.0,
    ) {
        let cfg = scenario(gpus, rate, scheduler_from(sel, batch, wait_s), 30.0, seed);
        let a = simulate(&cfg, &profile(0.3), &Registry::new());
        let b = simulate(&cfg, &profile(0.3), &Registry::new());
        prop_assert_eq!(a, b);
    }

    /// Causality and sanity on every record: start ≥ arrival,
    /// finish > start, batch within any cap, GPU in range.
    #[test]
    fn records_are_causal(
        seed in 0u64..1_000,
        rate in 0.5f64..6.0,
        gpus in 1usize..4,
        sel in 0usize..4,
        batch in 2usize..16,
        wait_s in 0.1f64..1.0,
    ) {
        let scheduler = scheduler_from(sel, batch, wait_s);
        let cfg = scenario(gpus, rate, scheduler, 30.0, seed);
        let r = simulate(&cfg, &profile(0.3), &Registry::new());
        let cap = match scheduler {
            SchedulerKind::Fifo => 1,
            SchedulerKind::Static { batch, .. } => batch,
            SchedulerKind::Dynamic { max_batch } | SchedulerKind::Pods { max_batch } => max_batch,
        };
        for rec in &r.records {
            prop_assert!(rec.start_s >= rec.arrival_s - 1e-12);
            prop_assert!(rec.finish_s > rec.start_s);
            prop_assert!(rec.batch >= 1 && rec.batch <= cap, "batch {}", rec.batch);
            prop_assert!(rec.gpu < gpus);
            prop_assert!(rec.depth_at_arrival >= 1);
        }
    }
}
