//! Property tests: the calendar queue is event-for-event identical to
//! the `BinaryHeap` oracle under random schedule/pop interleavings.
//!
//! Both kernels promise the same contract — pops in `(time, insertion
//! sequence)` order with a forward-only clock — so driving them in
//! lockstep with the same operation stream must produce the identical
//! pop sequence, lengths, and clock readings at every step.

use mmg_serve::{CalendarEventQueue, HeapEventQueue};
use proptest::prelude::*;

/// Drives both queues with the same op stream and asserts lockstep
/// equality. `ops` entries: (coarse time step, pop decision). Times are
/// quantized to a grid so same-instant ties happen constantly, which is
/// exactly where the (time, seq) tiebreak matters.
fn drive(ops: &[(u32, u32)], quantum: f64, horizon_jump: bool) {
    let mut cal = CalendarEventQueue::new();
    let mut heap = HeapEventQueue::new();
    let mut scheduled = 0u64;
    let mut popped = 0u64;
    for (i, &(step, decide)) in ops.iter().enumerate() {
        let at = cal.now_s() + f64::from(step) * quantum;
        assert_eq!(cal.now_s(), heap.now_s(), "clocks diverged before op {i}");
        cal.schedule(at, (i, scheduled));
        heap.schedule(at, (i, scheduled));
        scheduled += 1;
        if horizon_jump && decide % 17 == 0 {
            // Occasionally schedule far in the future to exercise the
            // calendar's sparse-jump path.
            let far = cal.now_s() + 1.0e6 + f64::from(step);
            cal.schedule(far, (usize::MAX, scheduled));
            heap.schedule(far, (usize::MAX, scheduled));
            scheduled += 1;
        }
        if decide % 3 != 0 {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "pop diverged at op {i}");
            if a.is_some() {
                popped += 1;
            }
            assert_eq!(cal.now_s(), heap.now_s(), "clock diverged at op {i}");
        }
        assert_eq!(cal.len(), heap.len(), "len diverged at op {i}");
    }
    // Drain: every remaining event must come out identically.
    loop {
        let a = cal.pop();
        let b = heap.pop();
        assert_eq!(a, b, "drain diverged after {popped} pops");
        if a.is_none() {
            break;
        }
        popped += 1;
    }
    assert_eq!(popped, scheduled, "event conservation");
    assert!(cal.is_empty() && heap.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense tie-heavy streams: tiny quantized steps collide constantly.
    #[test]
    fn calendar_matches_heap_dense(
        steps in proptest::collection::vec((0u32..4, 0u32..100), 200..800),
    ) {
        drive(&steps, 0.25, false);
    }

    /// Spread-out streams with occasional far-future bursts, forcing
    /// calendar resizes and empty-year jumps.
    #[test]
    fn calendar_matches_heap_sparse(
        steps in proptest::collection::vec((0u32..1000, 0u32..100), 100..400),
    ) {
        drive(&steps, 0.013, true);
    }

    /// Sub-nanosecond quanta: floating-point bucketing must not reorder.
    #[test]
    fn calendar_matches_heap_fine_grained(
        steps in proptest::collection::vec((0u32..50, 0u32..100), 100..400),
    ) {
        drive(&steps, 1.0e-9, false);
    }
}

/// Pure-tie stress: thousands of events at identical instants.
#[test]
fn calendar_matches_heap_all_ties() {
    let ops: Vec<(u32, u32)> = (0..3_000).map(|i| (0, i % 100)).collect();
    drive(&ops, 1.0, false);
}
