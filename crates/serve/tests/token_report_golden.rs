//! Golden-file pin of the token-serving report.
//!
//! A fixed scenario (hand-built token service curve, fixed seed) must
//! render byte-identically on every host and toolchain — the TTFT/TPOT
//! phase rows, the per-GPU KV table, and the totals line are part of
//! the `repro token` determinism contract. If a change intentionally
//! alters the report format, regenerate the golden with:
//!
//! ```sh
//! MMG_BLESS=1 cargo test -p mmg-serve --test token_report_golden
//! ```
//!
//! and review the diff like any other schema change.

use mmg_models::ModelId;
use mmg_serve::{
    simulate_token, ArrivalProcess, KvAdmission, LengthDist, PhasePriority, TokenBatching,
    TokenReport, TokenScenarioCfg, TokenServiceCurve, TokenSlo,
};
use mmg_telemetry::Registry;

fn golden_report() -> String {
    let curve = TokenServiceCurve {
        model: ModelId::Llama2,
        batch_knots: vec![1, 8, 32],
        ctx_knots: vec![128, 1024],
        step_s: vec![vec![0.005, 0.008, 0.014], vec![0.006, 0.010, 0.020]],
        prefill_s: vec![(512, 0.04), (2048, 0.20)],
        tokens_per_step: 1,
        fixed_output_tokens: None,
        kv_bytes_per_token: 512 * 1024,
        weight_bytes: 14 << 30,
    };
    let cfg = TokenScenarioCfg {
        gpus: 2,
        model: ModelId::Llama2,
        arrival: ArrivalProcess::poisson(15.0),
        batching: TokenBatching::Continuous { max_batch: 16 },
        priority: PhasePriority::Decode,
        admission: KvAdmission::Prompt,
        chunk_tokens: 256,
        prompt: LengthDist::new(512.0, 0.3, 16, 4096),
        output: LengthDist::new(128.0, 0.3, 4, 1024),
        slo: TokenSlo { ttft_s: 0.5, tpot_s: 0.05 },
        duration_s: 40.0,
        max_requests: None,
        seed: 42,
    };
    // A 2 GiB budget puts the scenario into the preemption regime, so
    // the golden pins the eviction path too.
    let result = simulate_token(&cfg, &curve, 2 << 30, &Registry::new());
    assert!(result.preemptions() > 0, "golden scenario must exercise preemption");
    TokenReport::from_result(&result).render()
}

#[test]
fn token_report_matches_golden_bytes() {
    let got = golden_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/token_report.txt");
    if std::env::var_os("MMG_BLESS").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file exists; MMG_BLESS=1 to create");
    assert_eq!(
        got, want,
        "token report bytes diverged from the golden; if intentional, regenerate with MMG_BLESS=1"
    );
}

#[test]
fn token_report_renders_ttft_and_tpot_rows() {
    let report = golden_report();
    for needle in ["ttft", "tpot", "queue", "e2e", "p50", "p95", "p99", "KV budget", "Preempted"] {
        assert!(report.contains(needle), "report missing '{needle}':\n{report}");
    }
}
