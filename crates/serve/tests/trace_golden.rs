//! Golden-file pin of the flight recorder's Chrome-trace export.
//!
//! A fixed scenario (constant service curves, fixed seed) must serialize
//! to byte-identical JSON on every host and toolchain — that is the
//! determinism contract `repro serve --trace-out` relies on. If a change
//! intentionally alters the trace schema, regenerate the golden with:
//!
//! ```sh
//! MMG_BLESS=1 cargo test -p mmg-serve --test trace_golden
//! ```
//!
//! and review the diff like any other schema change.

use mmg_models::ModelId;
use mmg_serve::{
    simulate_recorded, ArrivalProcess, FlightCfg, RequestMix, ScenarioCfg, SchedulerKind,
    ServiceCurve, ServiceProfile, SloSpec,
};
use mmg_telemetry::Registry;

fn golden_trace() -> String {
    let mix = RequestMix::new(vec![
        (ModelId::StableDiffusion, 3.0),
        (ModelId::Parti, 1.0),
    ]);
    let profile = ServiceProfile::new(vec![
        ServiceCurve::constant(ModelId::StableDiffusion, 0.25),
        ServiceCurve::constant(ModelId::Parti, 0.75),
    ]);
    let cfg = ScenarioCfg::new(
        2,
        mix,
        ArrivalProcess::poisson(3.0),
        SchedulerKind::Dynamic { max_batch: 8 },
        SloSpec::FixedS(1.5),
        40.0,
        7,
    );
    let (_result, flight) = simulate_recorded(
        &cfg,
        &profile,
        &Registry::new(),
        FlightCfg { window_s: 5.0, ..FlightCfg::default() },
    );
    flight.to_chrome_trace_object()
}

#[test]
fn chrome_trace_matches_golden_bytes() {
    let got = golden_trace();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/serve_trace.json");
    if std::env::var_os("MMG_BLESS").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file exists; MMG_BLESS=1 to create");
    assert_eq!(
        got, want,
        "flight trace bytes diverged from the golden; if intentional, regenerate with MMG_BLESS=1"
    );
}

#[test]
fn chrome_trace_schema_is_well_formed() {
    let got = golden_trace();
    let v: serde_json::Value = serde_json::from_str(&got).expect("trace parses as JSON");
    assert_eq!(v.field("displayTimeUnit").and_then(serde_json::Value::as_str), Some("us"));
    let events = v
        .field("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut counter_tracks = std::collections::BTreeSet::new();
    let mut last_ts_per_tid: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut saw_span = false;
    for e in events {
        let ph = e.field("ph").and_then(serde_json::Value::as_str).expect("ph");
        let ts = e.field("ts").and_then(serde_json::Value::as_f64).expect("ts");
        let tid = e.field("tid").and_then(serde_json::Value::as_u64).expect("tid");
        assert!(ts >= 0.0);
        match ph {
            "X" => {
                saw_span = true;
                let dur = e.field("dur").and_then(serde_json::Value::as_f64).expect("dur");
                assert!(dur > 0.0, "span with non-positive duration");
                // Spans on a lane are monotonically ordered.
                let last = last_ts_per_tid.entry(tid).or_insert(f64::NEG_INFINITY);
                assert!(ts >= *last, "lane {tid} out of order: {ts} after {last}");
                *last = ts;
            }
            "C" => {
                let name = e.field("name").and_then(serde_json::Value::as_str).expect("name");
                counter_tracks.insert(name.to_string());
                let serde_json::Value::Object(pairs) = e.field("args").expect("args") else {
                    panic!("counter args must be an object");
                };
                for (k, val) in pairs {
                    let val = val.as_f64().unwrap_or_else(|| panic!("non-numeric {name}.{k}"));
                    assert!(val >= 0.0, "negative counter sample {name}.{k} = {val}");
                }
            }
            "i" | "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(saw_span, "no batch spans in the trace");
    assert!(
        counter_tracks.len() >= 4,
        "want >= 4 counter tracks, got {counter_tracks:?}"
    );
    for want in
        ["serve_queue_depth", "serve_throughput_rps", "serve_slo_attainment", "serve_gpu_util"]
    {
        assert!(counter_tracks.contains(want), "missing counter track {want}");
    }
}
