//! Multi-window multi-burn-rate SLO alerting over simulated time.
//!
//! This is the SRE-workbook error-budget recipe, scaled from wall-clock
//! weeks down to a simulation horizon. An SLO of objective `o` grants an
//! error budget of `1 - o`; the *burn rate* over a window is the error
//! fraction observed in that window divided by the budget (burn 1.0 =
//! spending the budget exactly at the sustainable pace). A [`BurnRule`]
//! pairs a long window (significance: enough budget burned to matter)
//! with a short window (recency: it is still burning *now*) and fires
//! when **both** exceed the rule's threshold — the classic
//! `14.4x over 1h && 5m` / `6x over 6h && 30m` page pair, with the
//! window lengths scaled to the horizon by [`SloPolicy::paging`].
//!
//! The [`BurnRateEngine`] is driven online by the serving cluster loop:
//! each request completion is `record`ed as good (met its SLO) or bad,
//! counts accumulate into fixed-width base windows (the same half-open
//! `[i·w, (i+1)·w)` convention as [`WindowedSeries`]), and every window
//! close re-evaluates all rules against a bounded ring of recent
//! windows. Everything is plain integer/f64 arithmetic over a
//! deterministic event stream, so alert timelines are byte-reproducible
//! — the same guarantee the rest of the simulator makes.
//!
//! Unlike [`WindowedSeries`], the evaluation ring never folds: doubling
//! window widths mid-run would silently change alert semantics. The ring
//! is bounded by the longest rule window instead, so memory stays O(1)
//! regardless of horizon. [`BudgetWindow`] still implements
//! [`WindowValue`], so per-seed good/total timelines can be pooled
//! across replications with the existing series machinery.
//!
//! The module also hosts [`RatchetDetector`], a queue-depth anomaly
//! detector for the failure mode burn rates are slow to name: a FIFO
//! queue that *ratchets* — mean depth climbing monotonically window
//! over window — is collapsing long before p99 shows it.

use crate::timeseries::WindowValue;
use std::collections::VecDeque;

/// Good/total completion counts for one window of simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetWindow {
    /// Completions that met their SLO in this window.
    pub good: u64,
    /// All completions in this window.
    pub total: u64,
}

impl WindowValue for BudgetWindow {
    fn merge(&mut self, other: &Self) {
        self.good += other.good;
        self.total += other.total;
    }
}

/// One long/short window pair with a burn-rate threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Display name, e.g. `"fast"` or `"slow"`.
    pub name: String,
    /// Long (significance) window, seconds of simulated time.
    pub long_s: f64,
    /// Short (recency) window, seconds of simulated time.
    pub short_s: f64,
    /// Fires when burn over *both* windows reaches this multiple of the
    /// sustainable rate.
    pub max_burn: f64,
}

/// An SLO objective plus the burn-rate rules that guard it.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Target good fraction, e.g. `0.95` for a 95% attainment SLO. The
    /// error budget is `1 - objective`.
    pub objective: f64,
    /// Base evaluation window width (seconds). Rule windows are rounded
    /// to whole multiples of this; rules are evaluated each time a base
    /// window closes.
    pub window_s: f64,
    /// Rules, evaluated independently; any of them can fire.
    pub rules: Vec<BurnRule>,
}

impl SloPolicy {
    /// The classic two-pair paging policy scaled to a simulation
    /// horizon: the horizon plays the role of the 30-day budget period,
    /// giving a fast pair (14.4x over `horizon/24`, short `horizon/96`)
    /// and a slow pair (6x over `horizon/8`, short `horizon/32`). The
    /// base window is the fast short window.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < objective < 1` and `horizon_s > 0`.
    #[must_use]
    pub fn paging(objective: f64, horizon_s: f64) -> Self {
        assert!(
            objective > 0.0 && objective < 1.0,
            "objective must be in (0, 1), got {objective}"
        );
        assert!(horizon_s > 0.0, "horizon must be positive");
        let window_s = horizon_s / 96.0;
        SloPolicy {
            objective,
            window_s,
            rules: vec![
                BurnRule {
                    name: "fast".to_string(),
                    long_s: horizon_s / 24.0,
                    short_s: horizon_s / 96.0,
                    max_burn: 14.4,
                },
                BurnRule {
                    name: "slow".to_string(),
                    long_s: horizon_s / 8.0,
                    short_s: horizon_s / 32.0,
                    max_burn: 6.0,
                },
            ],
        }
    }

    /// Error budget: `1 - objective`.
    #[must_use]
    pub fn budget(&self) -> f64 {
        1.0 - self.objective
    }
}

/// Fire/clear transition of an alerting rule or detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The rule's condition became true.
    Fire,
    /// The rule's condition became false after firing.
    Clear,
}

impl AlertKind {
    /// Lower-case label (`"fire"` / `"clear"`) for traces and metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Fire => "fire",
            AlertKind::Clear => "clear",
        }
    }
}

/// One burn-rate alert transition, stamped with the simulated time of
/// the window close that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Simulated time of the evaluation (the window-close instant).
    pub t_s: f64,
    /// Index into [`SloPolicy::rules`].
    pub rule: usize,
    /// Fire or clear.
    pub kind: AlertKind,
    /// Burn rate over the rule's long window at evaluation time.
    pub long_burn: f64,
    /// Burn rate over the rule's short window at evaluation time.
    pub short_burn: f64,
}

/// Per-rule window lengths in base windows, precomputed.
#[derive(Debug, Clone)]
struct RuleWindows {
    long_n: usize,
    short_n: usize,
}

/// Online multi-window burn-rate evaluator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct BurnRateEngine {
    policy: SloPolicy,
    rule_windows: Vec<RuleWindows>,
    /// Closed base windows, most recent last; bounded by the longest
    /// rule window.
    ring: VecDeque<BudgetWindow>,
    ring_cap: usize,
    /// The window currently accumulating.
    cur: BudgetWindow,
    /// Index of the accumulating window (`floor(t / window_s)`).
    cur_idx: u64,
    firing: Vec<bool>,
    events: Vec<AlertEvent>,
    finished: bool,
}

impl BurnRateEngine {
    /// Builds an engine for `policy`. Rule windows shorter than the base
    /// window round up to one window.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < objective < 1`, `window_s > 0`, and the policy
    /// has at least one rule.
    #[must_use]
    pub fn new(policy: SloPolicy) -> Self {
        assert!(
            policy.objective > 0.0 && policy.objective < 1.0,
            "objective must be in (0, 1)"
        );
        assert!(policy.window_s > 0.0, "base window must be positive");
        assert!(!policy.rules.is_empty(), "policy needs at least one rule");
        let rule_windows: Vec<RuleWindows> = policy
            .rules
            .iter()
            .map(|r| RuleWindows {
                long_n: ((r.long_s / policy.window_s).round() as usize).max(1),
                short_n: ((r.short_s / policy.window_s).round() as usize).max(1),
            })
            .collect();
        let ring_cap = rule_windows
            .iter()
            .map(|w| w.long_n.max(w.short_n))
            .max()
            .expect("at least one rule");
        let n_rules = policy.rules.len();
        BurnRateEngine {
            policy,
            rule_windows,
            ring: VecDeque::with_capacity(ring_cap),
            ring_cap,
            cur: BudgetWindow::default(),
            cur_idx: 0,
            firing: vec![false; n_rules],
            events: Vec::new(),
            finished: false,
        }
    }

    /// The policy this engine evaluates.
    #[must_use]
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Records one completion at simulated time `t_s` (non-decreasing
    /// across calls): `good` means the request met its SLO. Closes and
    /// evaluates any base windows that `t_s` has moved past.
    pub fn record(&mut self, t_s: f64, good: bool) {
        debug_assert!(!self.finished, "record after finish");
        self.advance_to(t_s);
        self.cur.total += 1;
        if good {
            self.cur.good += 1;
        }
    }

    /// Closes every base window that ends at or before `t_s`,
    /// evaluating rules at each close. Half-open windows: a completion
    /// exactly at `k·window_s` belongs to window `k`, so window `k-1`
    /// closes first.
    fn advance_to(&mut self, t_s: f64) {
        let idx = (t_s.max(0.0) / self.policy.window_s) as u64;
        while self.cur_idx < idx {
            self.close_current();
        }
    }

    /// Pushes the accumulating window into the ring and evaluates all
    /// rules at its close instant.
    fn close_current(&mut self) {
        let closed = std::mem::take(&mut self.cur);
        if self.ring.len() == self.ring_cap {
            self.ring.pop_front();
        }
        self.ring.push_back(closed);
        self.cur_idx += 1;
        let close_t = self.cur_idx as f64 * self.policy.window_s;
        self.evaluate(close_t);
    }

    /// Burn rate over the most recent `n` closed windows: error fraction
    /// divided by budget; 0 when the span saw no traffic.
    fn burn_over(&self, n: usize) -> f64 {
        let take = n.min(self.ring.len());
        let mut good = 0u64;
        let mut total = 0u64;
        for w in self.ring.iter().rev().take(take) {
            good += w.good;
            total += w.total;
        }
        if total == 0 {
            return 0.0;
        }
        let err = (total - good) as f64 / total as f64;
        err / self.policy.budget()
    }

    fn evaluate(&mut self, t_s: f64) {
        for (i, rw) in self.rule_windows.iter().enumerate() {
            let long_burn = self.burn_over(rw.long_n);
            let short_burn = self.burn_over(rw.short_n);
            let threshold = self.policy.rules[i].max_burn;
            let hot = long_burn >= threshold && short_burn >= threshold;
            if hot != self.firing[i] {
                self.firing[i] = hot;
                self.events.push(AlertEvent {
                    t_s,
                    rule: i,
                    kind: if hot { AlertKind::Fire } else { AlertKind::Clear },
                    long_burn,
                    short_burn,
                });
            }
        }
    }

    /// Closes the trailing partial window at the end of the run and
    /// runs one final evaluation stamped at `t_end_s`. Idempotent.
    pub fn finish(&mut self, t_end_s: f64) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.advance_to(t_end_s);
        if self.cur.total > 0 {
            // Partial window: fold it in and evaluate at the actual end
            // time rather than a nominal close instant never reached.
            let closed = std::mem::take(&mut self.cur);
            if self.ring.len() == self.ring_cap {
                self.ring.pop_front();
            }
            self.ring.push_back(closed);
            self.evaluate(t_end_s);
        }
    }

    /// All fire/clear transitions so far, in evaluation order.
    #[must_use]
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Whether rule `i` is currently firing.
    #[must_use]
    pub fn is_firing(&self, rule: usize) -> bool {
        self.firing.get(rule).copied().unwrap_or(false)
    }

    /// Simulated time of the first `Fire` across all rules, if any.
    #[must_use]
    pub fn time_to_first_alert_s(&self) -> Option<f64> {
        self.events
            .iter()
            .find(|e| e.kind == AlertKind::Fire)
            .map(|e| e.t_s)
    }
}

/// One ratchet-detector transition.
#[derive(Debug, Clone, PartialEq)]
pub struct RatchetEvent {
    /// Simulated time of the window close that produced the transition.
    pub t_s: f64,
    /// Fire or clear.
    pub kind: AlertKind,
    /// Mean queue depth of the window that triggered the transition.
    pub depth: f64,
    /// Mean depth at the start of the growth streak.
    pub baseline: f64,
}

/// Flags a queue whose mean depth *ratchets* — grows monotonically for
/// `streak` consecutive windows to at least `growth ×` the depth at the
/// streak's start (and at least `min_depth` in absolute terms, so an
/// idle queue wobbling between 0.001 and 0.002 stays quiet). Clears as
/// soon as a window fails to grow. This is the signature of a queue
/// whose arrival rate exceeds service rate — the FIFO collapse the
/// serve-timeline experiment demonstrates — visible windows before any
/// latency quantile reports it.
#[derive(Debug, Clone)]
pub struct RatchetDetector {
    streak_needed: usize,
    growth: f64,
    min_depth: f64,
    last: Option<f64>,
    baseline: f64,
    streak: usize,
    firing: bool,
    events: Vec<RatchetEvent>,
}

impl RatchetDetector {
    /// A detector requiring `streak` consecutive growing windows, total
    /// growth factor `growth`, and absolute mean depth `min_depth`.
    ///
    /// # Panics
    ///
    /// Panics unless `streak >= 1`, `growth >= 1`, and
    /// `min_depth >= 0`.
    #[must_use]
    pub fn new(streak: usize, growth: f64, min_depth: f64) -> Self {
        assert!(streak >= 1, "streak must be at least 1");
        assert!(growth >= 1.0, "growth factor must be >= 1");
        assert!(min_depth >= 0.0, "min depth must be non-negative");
        RatchetDetector {
            streak_needed: streak,
            growth,
            min_depth,
            last: None,
            baseline: 0.0,
            streak: 0,
            firing: false,
            events: Vec::new(),
        }
    }

    /// Feeds the mean queue depth of the window closing at `t_s`.
    pub fn push(&mut self, t_s: f64, mean_depth: f64) {
        if let Some(prev) = self.last {
            if mean_depth > prev {
                if self.streak == 0 {
                    self.baseline = prev;
                }
                self.streak += 1;
            } else {
                self.streak = 0;
                if self.firing {
                    self.firing = false;
                    self.events.push(RatchetEvent {
                        t_s,
                        kind: AlertKind::Clear,
                        depth: mean_depth,
                        baseline: self.baseline,
                    });
                }
            }
        }
        self.last = Some(mean_depth);
        let grown = mean_depth >= (self.baseline * self.growth).max(self.min_depth);
        if !self.firing && self.streak >= self.streak_needed && grown {
            self.firing = true;
            self.events.push(RatchetEvent {
                t_s,
                kind: AlertKind::Fire,
                depth: mean_depth,
                baseline: self.baseline,
            });
        }
    }

    /// All fire/clear transitions so far.
    #[must_use]
    pub fn events(&self) -> &[RatchetEvent] {
        &self.events
    }

    /// Whether the detector is currently firing.
    #[must_use]
    pub fn is_firing(&self) -> bool {
        self.firing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-rule policy with hand-pickable windows: base 1 s, long 4 s,
    /// short 2 s, threshold `burn`.
    fn policy(objective: f64, burn: f64) -> SloPolicy {
        SloPolicy {
            objective,
            window_s: 1.0,
            rules: vec![BurnRule {
                name: "test".to_string(),
                long_s: 4.0,
                short_s: 2.0,
                max_burn: burn,
            }],
        }
    }

    #[test]
    fn all_bad_traffic_fires_at_the_first_window_close() {
        // Budget 0.1; all-bad traffic burns at 10x; threshold 5x.
        let mut e = BurnRateEngine::new(policy(0.9, 5.0));
        for i in 0..10 {
            e.record(i as f64 * 0.2, false);
        }
        // Crossing into window 1 closes window 0 and fires.
        e.record(1.0, false);
        let ev = e.events();
        assert_eq!(ev.len(), 1, "exactly one transition: {ev:?}");
        assert_eq!(ev[0].kind, AlertKind::Fire);
        assert_eq!(ev[0].t_s, 1.0, "fires at the window-close instant");
        assert!((ev[0].long_burn - 10.0).abs() < 1e-12);
        assert!((ev[0].short_burn - 10.0).abs() < 1e-12);
        assert_eq!(e.time_to_first_alert_s(), Some(1.0));
        assert!(e.is_firing(0));
    }

    #[test]
    fn boundary_completion_lands_in_the_later_window() {
        // Windows are half-open: a completion at exactly t = 1.0 belongs
        // to window 1, so window 0 closes empty-of-it.
        let mut e = BurnRateEngine::new(policy(0.9, 5.0));
        e.record(0.5, false);
        e.record(1.0, false); // closes window 0 with exactly one bad completion
        assert_eq!(e.events().len(), 1, "window 0 alone burns 10x > 5x");
        e.finish(2.0);
        // finish closes window 1 (the t=1.0 completion) at its nominal
        // boundary; no partial window remains.
        let fires = e.events().iter().filter(|v| v.kind == AlertKind::Fire).count();
        assert_eq!(fires, 1, "still a single fire: {:?}", e.events());
    }

    #[test]
    fn good_traffic_clears_through_the_short_window_first() {
        let mut e = BurnRateEngine::new(policy(0.9, 5.0));
        // Two windows of all-bad traffic → fire.
        for t in [0.1, 0.6, 1.1, 1.6] {
            e.record(t, false);
        }
        e.record(2.0, true); // closes window 1, fire already latched
        assert!(e.is_firing(0));
        // Two windows of all-good traffic: the short (2-window) burn
        // falls to 0 while the long (4-window) still remembers the bad
        // spell — the AND condition clears on the short window.
        for t in [2.2, 2.7, 3.2, 3.7] {
            e.record(t, true);
        }
        e.finish(4.0);
        let kinds: Vec<AlertKind> = e.events().iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![AlertKind::Fire, AlertKind::Clear], "{:?}", e.events());
        assert!(!e.is_firing(0));
        let clear = &e.events()[1];
        assert!(
            clear.long_burn >= 5.0,
            "the long window is still hot at clear time: {clear:?}"
        );
        assert!(
            clear.short_burn < 5.0,
            "it is the short (recency) window that clears the alert: {clear:?}"
        );
    }

    #[test]
    fn idle_gaps_close_empty_windows_without_alerting() {
        let mut e = BurnRateEngine::new(policy(0.9, 5.0));
        e.record(0.5, true);
        // A long silence: windows 0..9 close empty; no-traffic burn is 0.
        e.record(10.5, true);
        assert!(e.events().is_empty());
        e.finish(11.0);
        assert!(e.events().is_empty());
        assert_eq!(e.time_to_first_alert_s(), None);
    }

    #[test]
    fn finish_evaluates_the_trailing_partial_window() {
        let mut e = BurnRateEngine::new(policy(0.9, 5.0));
        // All traffic inside window 0; the run ends mid-window.
        for t in [0.1, 0.2, 0.3] {
            e.record(t, false);
        }
        assert!(e.events().is_empty(), "nothing closed yet");
        e.finish(0.7);
        assert_eq!(e.events().len(), 1);
        assert_eq!(e.events()[0].t_s, 0.7, "stamped at the actual end time");
        // Idempotent.
        e.finish(0.7);
        assert_eq!(e.events().len(), 1);
    }

    #[test]
    fn paging_policy_scales_to_the_horizon() {
        let p = SloPolicy::paging(0.95, 240.0);
        assert!((p.budget() - 0.05).abs() < 1e-12);
        assert_eq!(p.rules.len(), 2);
        assert!((p.rules[0].long_s - 10.0).abs() < 1e-9);
        assert!((p.rules[0].short_s - 2.5).abs() < 1e-9);
        assert!((p.rules[1].long_s - 30.0).abs() < 1e-9);
        assert!((p.rules[1].short_s - 7.5).abs() < 1e-9);
        // The engine accepts it and the ring covers the slow long window.
        let e = BurnRateEngine::new(p);
        assert_eq!(e.ring_cap, 12);
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut e = BurnRateEngine::new(policy(0.99, 2.0));
            for i in 0..1000 {
                let t = i as f64 * 0.013;
                e.record(t, i % 7 != 0);
            }
            e.finish(13.0);
            e.events().to_vec()
        };
        assert_eq!(run(), run(), "same inputs, same alert timeline");
    }

    #[test]
    fn ratchet_fires_on_monotone_growth_and_clears_on_a_dip() {
        let mut d = RatchetDetector::new(3, 2.0, 1.0);
        // Monotone growth: 1 → 2 → 4 → 8; streak reaches 3 at depth 8
        // with baseline 1 (growth 8x ≥ 2x, depth ≥ 1).
        for (t, depth) in [(1.0, 1.0), (2.0, 2.0), (3.0, 4.0), (4.0, 8.0)] {
            d.push(t, depth);
        }
        assert!(d.is_firing());
        assert_eq!(d.events().len(), 1);
        assert_eq!(d.events()[0].kind, AlertKind::Fire);
        assert_eq!(d.events()[0].t_s, 4.0);
        assert_eq!(d.events()[0].baseline, 1.0);
        // Any non-growing window clears.
        d.push(5.0, 7.0);
        assert!(!d.is_firing());
        assert_eq!(d.events().len(), 2);
        assert_eq!(d.events()[1].kind, AlertKind::Clear);
    }

    #[test]
    fn ratchet_ignores_shallow_wobble() {
        let mut d = RatchetDetector::new(2, 2.0, 1.0);
        // Monotone but microscopic: never reaches min_depth 1.0.
        for (t, depth) in [(1.0, 0.001), (2.0, 0.002), (3.0, 0.004), (4.0, 0.008)] {
            d.push(t, depth);
        }
        assert!(!d.is_firing(), "sub-min-depth growth must stay quiet");
        assert!(d.events().is_empty());
    }

    #[test]
    fn ratchet_requires_the_growth_factor() {
        let mut d = RatchetDetector::new(2, 3.0, 1.0);
        // Growing, deep enough, but only 1.5x over the streak baseline.
        for (t, depth) in [(1.0, 4.0), (2.0, 5.0), (3.0, 6.0)] {
            d.push(t, depth);
        }
        assert!(!d.is_firing(), "1.5x growth under a 3x threshold");
        // Keep ratcheting until the factor is met.
        d.push(4.0, 13.0);
        assert!(d.is_firing(), "13 ≥ 3 × baseline 4");
    }

    #[test]
    fn budget_windows_merge_by_summing() {
        let mut a = BudgetWindow { good: 3, total: 5 };
        a.merge(&BudgetWindow { good: 2, total: 2 });
        assert_eq!(a, BudgetWindow { good: 5, total: 7 });
    }
}
