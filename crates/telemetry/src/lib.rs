//! Cross-cutting observability for the mmgen simulator stack.
//!
//! Three primitives, all cheap enough for simulator hot paths:
//!
//! - **Counters / gauges / histograms** live in a [`Registry`]. Handles
//!   ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed atomics, so
//!   instrumented code pays one atomic op per event and never takes a
//!   lock after registration.
//! - **Spans** ([`Span::enter`] / [`Registry::span`]) capture nested
//!   scopes with wall time and the *delta of every counter* over the
//!   scope, so a trace row can say "this UNet block moved 3.1 MB through
//!   HBM and hit L1 12 000 times".
//! - **Exporters**: [`Registry::render_prometheus`] emits Prometheus
//!   text exposition; [`Registry::snapshot_json`] emits a JSON snapshot
//!   (counters, gauges, histogram quantiles, finished spans).
//!
//! A process-wide registry is available via [`global`]; experiment code
//! that needs isolation (tests, parallel sweeps) creates its own
//! [`Registry::new`] and uses the same handle API.

#![deny(missing_docs)]

pub mod burnrate;
pub mod sketch;
pub mod timeseries;

pub use burnrate::{
    AlertEvent, AlertKind, BudgetWindow, BurnRateEngine, BurnRule, RatchetDetector, RatchetEvent,
    SloPolicy,
};
pub use sketch::QuantileSketch;
pub use timeseries::{WindowValue, WindowedSeries};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde_json::Value;

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Monotonically increasing event counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (stored as `f64` bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the gauge (not atomic across racing writers; the
    /// simulator records from one thread at a time).
    pub fn add(&self, dv: f64) {
        self.set(self.get() + dv);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bucket edges, strictly increasing; an implicit `+Inf`
    /// overflow bucket follows the last edge.
    edges: Vec<f64>,
    /// One count per edge plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket histogram with quantile estimation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner.edges.partition_point(|&edge| edge < v);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        // Lone-writer sum update (same caveat as Gauge::add).
        let cur = f64::from_bits(inner.sum_bits.load(Ordering::Relaxed));
        inner.sum_bits.store((cur + v).to_bits(), Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket containing the target rank. Returns 0 when the
    /// histogram is empty. Observations beyond the last edge clamp to it.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let inner = &self.0;
        let total = inner.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, bucket) in inner.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if (cumulative + in_bucket) as f64 >= target && in_bucket > 0 {
                let hi = inner.edges.get(i).copied().unwrap_or_else(|| {
                    // Overflow bucket: clamp to the last finite edge.
                    inner.edges.last().copied().unwrap_or(0.0)
                });
                let lo = if i == 0 { 0.0 } else { inner.edges[i - 1] };
                let frac = (target - cumulative as f64) / in_bucket as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            cumulative += in_bucket;
        }
        inner.edges.last().copied().unwrap_or(0.0)
    }
}

/// Nearest-rank `q`-quantile of an ascending-sorted slice: the shared
/// quantile picker used by the serving summaries (M/D/1 and the DES SLO
/// report). Unlike [`Histogram::quantile`] this is exact — no bucket
/// interpolation — so it is the right tool when the raw samples are in
/// hand. Returns `None` on an empty slice: an empty sample set has no
/// quantiles, and silently answering 0 has bitten callers that fed the
/// result into SLO math.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted needs an ascending slice"
    );
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

/// Exponential bucket edges for microsecond-scale durations: 1 µs to
/// ~10 s, four buckets per decade.
#[must_use]
pub fn time_buckets_us() -> Vec<f64> {
    let mut edges = Vec::with_capacity(29);
    let mut v = 1.0f64;
    while v <= 1.1e7 {
        edges.push(v);
        v *= 10f64.powf(0.25);
    }
    edges
}

/// Exponential bucket edges for second-scale latencies: 1 ms to ~100 s.
#[must_use]
pub fn latency_buckets_s() -> Vec<f64> {
    let mut edges = Vec::with_capacity(21);
    let mut v = 1e-3f64;
    while v <= 1.1e2 {
        edges.push(v);
        v *= 10f64.powf(0.25);
    }
    edges
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Metric identity: base name plus rendered, sorted label pairs
/// (`cache="l1",model="sd"`); empty string for no labels.
type Key = (String, String);

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

fn full_name(key: &Key) -> String {
    if key.1.is_empty() {
        key.0.clone()
    } else {
        format!("{}{{{}}}", key.0, key.1)
    }
}

/// Inverse of [`full_name`]: splits `name{labels}` back into the
/// registry key.
fn parse_full_name(full: &str) -> Key {
    match full.split_once('{') {
        Some((name, labels)) => (
            name.to_string(),
            labels.strip_suffix('}').unwrap_or(labels).to_string(),
        ),
        None => (full.to_string(), String::new()),
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A finished span: nested scope with wall time and counter deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Dot-joined path of enclosing span names (`unet.down.attn`).
    pub path: String,
    /// Microseconds since the registry epoch at which the span opened.
    pub start_us: f64,
    /// Span duration in microseconds.
    pub dur_us: f64,
    /// Counter increments observed while the span was open, full metric
    /// name → delta; zero-delta counters are omitted. Shared (`Arc`) so
    /// replay paths that stamp thousands of identical spans — e.g. the
    /// profiler memo serving a 50-step denoising loop — can attach the
    /// same delta list without cloning every string.
    pub counter_deltas: Arc<Vec<(String, u64)>>,
}

/// Point-in-time view of every counter in a registry. Subtract two
/// snapshots (or use [`CounterSnapshot::delta_since`]) for attribution.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    values: Vec<(String, u64)>,
}

impl CounterSnapshot {
    /// The raw `(full name, value)` pairs in this snapshot, sorted by
    /// name.
    #[must_use]
    pub fn values(&self) -> &[(String, u64)] {
        &self.values
    }

    /// Counter increments between this snapshot and the registry's
    /// current state. Counters created after the snapshot count from
    /// zero; zero deltas are omitted.
    #[must_use]
    pub fn delta_since(&self, registry: &Registry) -> Vec<(String, u64)> {
        let now = registry.counters_snapshot();
        let before: BTreeMap<&str, u64> =
            self.values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        now.values
            .into_iter()
            .filter_map(|(name, after)| {
                let delta = after - before.get(name.as_str()).copied().unwrap_or(0);
                (delta > 0).then_some((name, delta))
            })
            .collect()
    }
}

thread_local! {
    static SPAN_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; records a [`SpanRecord`] on drop.
#[derive(Debug)]
pub struct SpanGuard {
    registry: Registry,
    path: String,
    start: Instant,
    start_us: f64,
    snap: CounterSnapshot,
}

impl SpanGuard {
    /// The full dot-joined path of this span.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_PATH.with(|stack| {
            stack.borrow_mut().pop();
        });
        let record = SpanRecord {
            path: std::mem::take(&mut self.path),
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_secs_f64() * 1e6,
            counter_deltas: Arc::new(self.snap.delta_since(&self.registry)),
        };
        if let Ok(mut spans) = self.registry.inner.spans.lock() {
            spans.push(record);
        }
    }
}

/// The dot-joined path a span named `name` would receive if opened on
/// this thread right now — nested under any open span — without
/// actually opening one. Pairs with [`Registry::record_span`] on replay
/// paths that must emit the same paths a live run would.
#[must_use]
pub fn nested_span_path(name: &str) -> String {
    SPAN_PATH.with(|stack| match stack.borrow().last() {
        Some(parent) => format!("{parent}.{name}"),
        None => name.to_string(),
    })
}

/// Entry point for spans on the [`global`] registry.
pub struct Span;

impl Span {
    /// Opens a span named `name` on the global registry, nested under
    /// any span already open on this thread.
    #[must_use]
    pub fn enter(name: &str) -> SpanGuard {
        global().span(name)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Inner {
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<Key, Arc<HistogramInner>>>,
    spans: Mutex<Vec<SpanRecord>>,
    /// Metric family name → help text, rendered as `# HELP` lines.
    help: Mutex<BTreeMap<String, String>>,
    epoch: Instant,
}

/// A family of metrics and spans. Cheap to clone (shared interior).
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                help: Mutex::new(BTreeMap::new()),
                epoch: Instant::now(),
            }),
        }
    }

    /// Gets or creates the unlabelled counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates a counter with labels.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), render_labels(labels));
        let mut map = self.inner.counters.lock().expect("counter registry poisoned");
        Counter(Arc::clone(map.entry(key).or_default()))
    }

    /// Gets or creates the unlabelled gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates a gauge with labels.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), render_labels(labels));
        let mut map = self.inner.gauges.lock().expect("gauge registry poisoned");
        Gauge(Arc::clone(map.entry(key).or_default()))
    }

    /// Gets or creates the unlabelled histogram `name` with the given
    /// bucket edges (used only on first creation).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    #[must_use]
    pub fn histogram(&self, name: &str, edges: &[f64]) -> Histogram {
        self.histogram_with(name, &[], edges)
    }

    /// Gets or creates a histogram with labels.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], edges: &[f64]) -> Histogram {
        assert!(!edges.is_empty(), "histogram needs at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let key = (name.to_string(), render_labels(labels));
        let mut map = self.inner.histograms.lock().expect("histogram registry poisoned");
        let inner = map.entry(key).or_insert_with(|| {
            Arc::new(HistogramInner {
                edges: edges.to_vec(),
                buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            })
        });
        Histogram(Arc::clone(inner))
    }

    /// Registers help text for the metric family `name`, rendered as a
    /// single `# HELP` line ahead of the family's samples in
    /// [`Registry::render_prometheus`]. Later calls overwrite earlier
    /// ones; families without help render a generic placeholder so the
    /// exposition stays schema-valid either way.
    pub fn describe(&self, name: &str, help: &str) {
        let mut map = self.inner.help.lock().expect("help registry poisoned");
        map.insert(name.to_string(), help.to_string());
    }

    /// Appends a pre-built [`SpanRecord`] to this registry's finished
    /// spans, bypassing the snapshot machinery of [`Registry::span`].
    ///
    /// Replay paths (e.g. a profiler serving an operator from its memo
    /// cache) use this to record the span a live execution would have
    /// produced — same path and counter deltas — without paying two full
    /// counter snapshots per operator.
    pub fn record_span(&self, record: SpanRecord) {
        if let Ok(mut spans) = self.inner.spans.lock() {
            spans.push(record);
        }
    }

    /// Microseconds elapsed since this registry's epoch — the timebase
    /// of [`SpanRecord::start_us`].
    #[must_use]
    pub fn epoch_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Adds `deltas` — `(full metric name, increment)` pairs as produced
    /// by [`CounterSnapshot::delta_since`] or found in
    /// [`SpanRecord::counter_deltas`] — onto this registry's counters.
    /// Full names round-trip exactly: `name{label="v"}` lands on the
    /// counter registered as `counter_with("name", &[("label", "v")])`.
    pub fn apply_counter_deltas(&self, deltas: &[(String, u64)]) {
        let mut map = self.inner.counters.lock().expect("counter registry poisoned");
        for (full, delta) in deltas {
            let key = parse_full_name(full);
            map.entry(key).or_default().fetch_add(*delta, Ordering::Relaxed);
        }
    }

    /// Resolves a full metric name — `name` or `name{label="v"}`, the
    /// form [`CounterSnapshot::delta_since`] reports — to its [`Counter`]
    /// handle, creating the counter at zero if absent. Replay paths that
    /// apply the same delta list many times resolve handles once with
    /// this and then [`Counter::add`] lock-free, instead of paying
    /// [`Registry::apply_counter_deltas`]'s registry lock and name parse
    /// on every application.
    #[must_use]
    pub fn counter_handle(&self, full: &str) -> Counter {
        let key = parse_full_name(full);
        let mut map = self.inner.counters.lock().expect("counter registry poisoned");
        Counter(Arc::clone(map.entry(key).or_default()))
    }

    /// Merges another registry's state into this one, deterministically:
    /// counters add, gauges take the other's value, histograms merge
    /// bucket-by-bucket (created here with the other's edges when
    /// missing), finished spans append in the other's completion order.
    ///
    /// The worker-pool experiment engine runs each experiment on its own
    /// registry and merges them at join in experiment order, so totals
    /// are byte-identical to a serial run.
    ///
    /// # Panics
    ///
    /// Panics if a histogram exists in both registries under the same
    /// name with different bucket edges.
    pub fn merge_from(&self, other: &Registry) {
        {
            let theirs = other.inner.counters.lock().expect("counter registry poisoned");
            let mut ours = self.inner.counters.lock().expect("counter registry poisoned");
            for (key, v) in theirs.iter() {
                let add = v.load(Ordering::Relaxed);
                if add > 0 {
                    ours.entry(key.clone()).or_default().fetch_add(add, Ordering::Relaxed);
                }
            }
        }
        {
            let theirs = other.inner.gauges.lock().expect("gauge registry poisoned");
            let mut ours = self.inner.gauges.lock().expect("gauge registry poisoned");
            for (key, v) in theirs.iter() {
                ours.entry(key.clone())
                    .or_default()
                    .store(v.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        {
            let theirs = other.inner.histograms.lock().expect("histogram registry poisoned");
            let mut ours = self.inner.histograms.lock().expect("histogram registry poisoned");
            for (key, h) in theirs.iter() {
                let mine = ours.entry(key.clone()).or_insert_with(|| {
                    Arc::new(HistogramInner {
                        edges: h.edges.clone(),
                        buckets: (0..=h.edges.len()).map(|_| AtomicU64::new(0)).collect(),
                        sum_bits: AtomicU64::new(0f64.to_bits()),
                        count: AtomicU64::new(0),
                    })
                });
                assert_eq!(
                    mine.edges, h.edges,
                    "histogram '{}' merged with mismatched bucket edges",
                    key.0
                );
                for (dst, src) in mine.buckets.iter().zip(h.buckets.iter()) {
                    dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                let sum = f64::from_bits(mine.sum_bits.load(Ordering::Relaxed))
                    + f64::from_bits(h.sum_bits.load(Ordering::Relaxed));
                mine.sum_bits.store(sum.to_bits(), Ordering::Relaxed);
                mine.count.fetch_add(h.count.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        {
            let theirs = other.inner.help.lock().expect("help registry poisoned");
            let mut ours = self.inner.help.lock().expect("help registry poisoned");
            for (name, help) in theirs.iter() {
                ours.entry(name.clone()).or_insert_with(|| help.clone());
            }
        }
        let their_spans = other.finished_spans();
        if !their_spans.is_empty() {
            let mut spans = self.inner.spans.lock().expect("span registry poisoned");
            spans.extend(their_spans);
        }
    }

    /// Opens a span on this registry, nested under any span already
    /// open on this thread.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        let path = SPAN_PATH.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if let Some(parent) = stack.last() {
                format!("{parent}.{name}")
            } else {
                name.to_string()
            };
            stack.push(path.clone());
            path
        });
        SpanGuard {
            registry: self.clone(),
            path,
            start: Instant::now(),
            start_us: self.inner.epoch.elapsed().as_secs_f64() * 1e6,
            snap: self.counters_snapshot(),
        }
    }

    /// Point-in-time values of every counter (full name → value),
    /// sorted by name.
    #[must_use]
    pub fn counters_snapshot(&self) -> CounterSnapshot {
        let map = self.inner.counters.lock().expect("counter registry poisoned");
        CounterSnapshot {
            values: map
                .iter()
                .map(|(key, v)| (full_name(key), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// All spans finished so far, in completion order.
    #[must_use]
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().expect("span registry poisoned").clone()
    }

    /// Zeroes every counter/gauge/histogram and clears finished spans.
    /// Existing handles stay valid. Meant for test isolation around the
    /// [`global`] registry.
    pub fn reset(&self) {
        for v in self.inner.counters.lock().expect("counter registry poisoned").values() {
            v.store(0, Ordering::Relaxed);
        }
        for v in self.inner.gauges.lock().expect("gauge registry poisoned").values() {
            v.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in self.inner.histograms.lock().expect("histogram registry poisoned").values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
            h.count.store(0, Ordering::Relaxed);
        }
        self.inner.spans.lock().expect("span registry poisoned").clear();
    }

    // -- exporters ---------------------------------------------------------

    /// Renders the Prometheus text exposition format (counters, gauges,
    /// histograms with `_bucket`/`_sum`/`_count` series). Each metric
    /// family is preceded by exactly one `# HELP` line (registered via
    /// [`Registry::describe`], or a placeholder) and one `# TYPE` line,
    /// regardless of how many labeled instances it has.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let help = self.inner.help.lock().expect("help registry poisoned").clone();
        let family_header = |out: &mut String, name: &str, kind: &str| {
            let text = help
                .get(name)
                .map_or_else(|| format!("{kind} metric {name}"), |h| h.clone());
            // HELP text is a single line in the exposition format.
            out.push_str(&format!("# HELP {} {}\n", name, text.replace('\n', " ")));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        };
        let mut out = String::new();
        {
            let counters = self.inner.counters.lock().expect("counter registry poisoned");
            let mut last_name = "";
            for (key, v) in counters.iter() {
                if key.0 != last_name {
                    family_header(&mut out, &key.0, "counter");
                    last_name = &key.0;
                }
                out.push_str(&format!("{} {}\n", full_name(key), v.load(Ordering::Relaxed)));
            }
        }
        {
            let gauges = self.inner.gauges.lock().expect("gauge registry poisoned");
            let mut last_name = "";
            for (key, v) in gauges.iter() {
                if key.0 != last_name {
                    family_header(&mut out, &key.0, "gauge");
                    last_name = &key.0;
                }
                let value = f64::from_bits(v.load(Ordering::Relaxed));
                out.push_str(&format!("{} {}\n", full_name(key), fmt_f64(value)));
            }
        }
        {
            let histograms = self.inner.histograms.lock().expect("histogram registry poisoned");
            let mut last_name = "";
            for (key, h) in histograms.iter() {
                if key.0 != last_name {
                    family_header(&mut out, &key.0, "histogram");
                    last_name = &key.0;
                }
                let prefix = if key.1.is_empty() {
                    String::new()
                } else {
                    format!("{},", key.1)
                };
                let mut cumulative = 0u64;
                for (i, b) in h.buckets.iter().enumerate() {
                    cumulative += b.load(Ordering::Relaxed);
                    let le = h
                        .edges
                        .get(i)
                        .map_or_else(|| "+Inf".to_string(), |e| fmt_f64(*e));
                    out.push_str(&format!(
                        "{}_bucket{{{}le=\"{}\"}} {}\n",
                        key.0, prefix, le, cumulative
                    ));
                }
                let sum = f64::from_bits(h.sum_bits.load(Ordering::Relaxed));
                let labels = if key.1.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", key.1)
                };
                out.push_str(&format!("{}_sum{} {}\n", key.0, labels, fmt_f64(sum)));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    key.0,
                    labels,
                    h.count.load(Ordering::Relaxed)
                ));
            }
        }
        out
    }

    /// JSON snapshot: counter/gauge values, histogram summaries
    /// (count/sum/mean/p50/p95/p99), and finished spans.
    #[must_use]
    pub fn snapshot_json(&self) -> Value {
        let counters: Vec<(String, Value)> = {
            let map = self.inner.counters.lock().expect("counter registry poisoned");
            map.iter()
                .map(|(key, v)| {
                    (full_name(key), Value::from(v.load(Ordering::Relaxed)))
                })
                .collect()
        };
        let gauges: Vec<(String, Value)> = {
            let map = self.inner.gauges.lock().expect("gauge registry poisoned");
            map.iter()
                .map(|(key, v)| {
                    (full_name(key), Value::from(f64::from_bits(v.load(Ordering::Relaxed))))
                })
                .collect()
        };
        let histograms: Vec<(String, Value)> = {
            let map = self.inner.histograms.lock().expect("histogram registry poisoned");
            map.keys()
                .map(|key| {
                    let h = Histogram(Arc::clone(&map[key]));
                    (
                        full_name(key),
                        Value::Object(vec![
                            ("count".to_string(), Value::from(h.count())),
                            ("sum".to_string(), Value::from(h.sum())),
                            ("mean".to_string(), Value::from(h.mean())),
                            ("p50".to_string(), Value::from(h.quantile(0.50))),
                            ("p95".to_string(), Value::from(h.quantile(0.95))),
                            ("p99".to_string(), Value::from(h.quantile(0.99))),
                        ]),
                    )
                })
                .collect()
        };
        let spans: Vec<Value> = self
            .finished_spans()
            .into_iter()
            .map(|s| {
                Value::Object(vec![
                    ("path".to_string(), Value::String(s.path)),
                    ("start_us".to_string(), Value::from(s.start_us)),
                    ("dur_us".to_string(), Value::from(s.dur_us)),
                    (
                        "counter_deltas".to_string(),
                        Value::Object(
                            s.counter_deltas
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::from(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
            ("spans".to_string(), Value::Array(spans)),
        ])
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// The process-wide registry. All default instrumentation in the
/// workspace records here; [`Registry::reset`] gives tests isolation.
#[must_use]
pub fn global() -> Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counters_snapshot().values, vec![("hits_total".to_string(), 4)]);
    }

    #[test]
    fn labelled_counters_are_distinct_and_sorted() {
        let r = Registry::new();
        r.counter_with("c", &[("z", "1"), ("a", "2")]).inc();
        r.counter_with("c", &[("a", "2"), ("z", "1")]).inc();
        r.counter_with("c", &[("a", "3")]).inc();
        let snap = r.counters_snapshot();
        assert_eq!(
            snap.values,
            vec![
                ("c{a=\"2\",z=\"1\"}".to_string(), 2),
                ("c{a=\"3\"}".to_string(), 1),
            ]
        );
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(4.0);
        g.add(-1.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1.0, 2.0, 4.0, 8.0]);
        // 100 observations uniformly in (0, 4]: quartiles land at ~1, ~2.
        for i in 0..100 {
            h.observe((i as f64 + 1.0) * 0.04);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((1.0..=2.2).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((3.5..=4.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= 4.0);
        // Overflow clamps to the last edge.
        h.observe(100.0);
        assert!(h.quantile(1.0) <= 8.0);
    }

    #[test]
    fn histogram_exact_quantile_on_point_mass() {
        let r = Registry::new();
        let h = r.histogram("x", &[10.0, 20.0]);
        for _ in 0..10 {
            h.observe(15.0);
        }
        let p50 = h.quantile(0.5);
        assert!((10.0..=20.0).contains(&p50), "p50 {p50}");
        assert!((h.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn span_records_path_nesting_and_counter_deltas() {
        let r = Registry::new();
        let c = r.counter("work_total");
        {
            let _outer = r.span("unet");
            c.add(5);
            {
                let _inner = r.span("attn");
                c.add(7);
            }
            c.add(1);
        }
        let spans = r.finished_spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].path, "unet.attn");
        assert_eq!(*spans[0].counter_deltas, vec![("work_total".to_string(), 7)]);
        assert_eq!(spans[1].path, "unet");
        assert_eq!(*spans[1].counter_deltas, vec![("work_total".to_string(), 13)]);
        assert!(spans[1].dur_us >= spans[0].dur_us);
    }

    #[test]
    fn snapshot_delta_ignores_untouched_counters() {
        let r = Registry::new();
        let a = r.counter("a");
        let _b = r.counter("b");
        let snap = r.counters_snapshot();
        a.add(2);
        let late = r.counter("late");
        late.inc();
        assert_eq!(
            snap.delta_since(&r),
            vec![("a".to_string(), 2), ("late".to_string(), 1)]
        );
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("gpu_l1_hits_total").add(42);
        r.gauge("queue_depth").set(3.0);
        let h = r.histogram("kernel_time_us", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE gpu_l1_hits_total counter"));
        assert!(text.contains("gpu_l1_hits_total 42"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 3"));
        assert!(text.contains("kernel_time_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("kernel_time_us_bucket{le=\"10\"} 2"));
        assert!(text.contains("kernel_time_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("kernel_time_us_count 3"));
    }

    #[test]
    fn prometheus_exposition_is_valid() {
        // Multiple labeled instances per family, all three metric kinds,
        // help registered for some families and defaulted for others.
        let r = Registry::new();
        r.describe("req_total", "requests admitted");
        r.describe("lat_s", "end-to-end latency");
        r.counter_with("req_total", &[("model", "sd")]).add(3);
        r.counter_with("req_total", &[("model", "parti")]).add(5);
        r.counter("drops_total").add(1);
        r.gauge_with("util", &[("gpu", "0")]).set(0.5);
        r.gauge_with("util", &[("gpu", "1")]).set(0.75);
        for labels in [[("model", "sd")], [("model", "parti")]] {
            let h = r.histogram_with("lat_s", &labels, &[0.1, 1.0]);
            h.observe(0.05);
            h.observe(0.5);
            h.observe(5.0);
        }
        let text = r.render_prometheus();

        // Exactly one HELP and one TYPE per family, HELP directly before
        // TYPE, and both before any of the family's samples.
        let mut seen_families: Vec<String> = Vec::new();
        let mut pending_help: Option<String> = None;
        let mut samples_of: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("HELP has a name");
                assert!(pending_help.is_none(), "two HELP lines in a row at {line}");
                assert!(
                    !seen_families.contains(&name.to_string()),
                    "family {name} announced twice"
                );
                assert!(rest.len() > name.len() + 1, "HELP {name} has no text");
                pending_help = Some(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE has a name");
                let kind = parts.next().expect("TYPE has a kind");
                assert!(["counter", "gauge", "histogram"].contains(&kind), "kind {kind}");
                assert_eq!(
                    pending_help.take().as_deref(),
                    Some(name),
                    "TYPE {name} not directly preceded by its HELP"
                );
                seen_families.push(name.to_string());
            } else {
                assert!(pending_help.is_none(), "sample interleaved between HELP and TYPE");
                let (series, value) = line.rsplit_once(' ').expect("sample line shape");
                let value: f64 = value.parse().unwrap_or_else(|_| panic!("value in {line}"));
                assert!(value >= 0.0);
                let base = series.split('{').next().unwrap();
                let family = base
                    .strip_suffix("_bucket")
                    .or_else(|| base.strip_suffix("_sum"))
                    .or_else(|| base.strip_suffix("_count"))
                    .filter(|f| seen_families.contains(&(*f).to_string()))
                    .unwrap_or(base);
                assert!(
                    seen_families.contains(&family.to_string()),
                    "sample {series} before its family header"
                );
                samples_of.entry(family.to_string()).or_default().push((
                    series.to_string(),
                    value,
                ));
            }
        }
        assert!(pending_help.is_none(), "dangling HELP at end of exposition");
        // One header per family even with several labeled instances.
        let req_headers = text.matches("# TYPE req_total ").count();
        assert_eq!(req_headers, 1);
        assert_eq!(text.matches("# HELP req_total ").count(), 1);
        assert_eq!(text.matches("# TYPE util ").count(), 1);
        assert_eq!(text.matches("# TYPE lat_s ").count(), 1);
        assert!(text.contains("# HELP req_total requests admitted\n"));
        // Default help keeps undescribed families valid.
        assert!(text.contains("# HELP drops_total counter metric drops_total\n"));
        // Histogram shape: per instance, buckets are cumulative, end at
        // +Inf, and _count equals the +Inf bucket.
        for instance in ["{model=\"parti\"", "{model=\"sd\""] {
            let buckets: Vec<f64> = samples_of["lat_s"]
                .iter()
                .filter(|(s, _)| s.starts_with(&format!("lat_s_bucket{instance}")))
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(buckets.len(), 3, "two edges + +Inf for {instance}");
            assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "non-cumulative buckets");
            let count = samples_of["lat_s"]
                .iter()
                .find(|(s, _)| s.starts_with(&format!("lat_s_count{instance}")))
                .map(|&(_, v)| v)
                .expect("count series");
            assert_eq!(count, *buckets.last().unwrap());
            assert_eq!(count, 3.0);
        }
    }

    #[test]
    fn json_snapshot_shape() {
        let r = Registry::new();
        r.counter("n").add(2);
        let h = r.histogram("t", &[1.0]);
        h.observe(0.5);
        let snap = r.snapshot_json();
        assert_eq!(snap.field("counters").and_then(|c| c.field("n")).and_then(Value::as_u64), Some(2));
        let hist = snap.field("histograms").and_then(|h| h.field("t")).expect("histogram entry");
        assert_eq!(hist.field("count").and_then(Value::as_u64), Some(1));
        assert!(snap.field("spans").is_some());
    }

    #[test]
    fn reset_zeroes_everything_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(9);
        let h = r.histogram("h", &[1.0]);
        h.observe(0.5);
        {
            let _s = r.span("s");
        }
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(r.finished_spans().is_empty());
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global();
        let b = global();
        let c = a.counter("global_smoke_total");
        let before = c.get();
        b.counter("global_smoke_total").inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn apply_counter_deltas_round_trips_full_names() {
        let r = Registry::new();
        r.counter("plain").add(3);
        r.counter_with("labelled", &[("kind", "gemm"), ("a", "b")]).add(2);
        let deltas = CounterSnapshot { values: vec![] }.delta_since(&r);
        let replay = Registry::new();
        replay.apply_counter_deltas(&deltas);
        assert_eq!(replay.counters_snapshot().values(), r.counters_snapshot().values());
        // Applying twice doubles, proving it lands on the same keys.
        replay.apply_counter_deltas(&deltas);
        assert_eq!(replay.counter("plain").get(), 6);
        assert_eq!(replay.counter_with("labelled", &[("a", "b"), ("kind", "gemm")]).get(), 4);
    }

    #[test]
    fn counter_handle_resolves_full_names() {
        let r = Registry::new();
        r.counter_with("labelled", &[("kind", "gemm")]).add(2);
        let h = r.counter_handle("labelled{kind=\"gemm\"}");
        h.add(3);
        assert_eq!(r.counter_with("labelled", &[("kind", "gemm")]).get(), 5);
        // Unknown names create the counter at zero, like apply_counter_deltas.
        let created = r.counter_handle("fresh_total");
        assert_eq!(r.counter("fresh_total").get(), 0);
        created.inc();
        assert_eq!(r.counter("fresh_total").get(), 1);
    }

    #[test]
    fn record_span_appends_verbatim() {
        let r = Registry::new();
        let record = SpanRecord {
            path: "unet.replayed".to_string(),
            start_us: 12.5,
            dur_us: 3.0,
            counter_deltas: Arc::new(vec![("k".to_string(), 7)]),
        };
        r.record_span(record.clone());
        assert_eq!(r.finished_spans(), vec![record]);
    }

    #[test]
    fn nested_span_path_matches_live_span_paths() {
        let r = Registry::new();
        assert_eq!(nested_span_path("root"), "root");
        {
            let _outer = r.span("unet");
            assert_eq!(nested_span_path("attn"), "unet.attn");
            {
                let _inner = r.span("down");
                assert_eq!(nested_span_path("gemm"), "unet.down.gemm");
            }
            assert_eq!(nested_span_path("attn"), "unet.attn");
        }
        assert_eq!(nested_span_path("root"), "root");
    }

    #[test]
    fn merge_from_adds_counters_and_appends_spans() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared_total").add(5);
        b.counter("shared_total").add(7);
        b.counter("only_b_total").add(1);
        b.gauge("depth").set(4.0);
        b.record_span(SpanRecord {
            path: "exp".to_string(),
            start_us: 0.0,
            dur_us: 1.0,
            counter_deltas: Arc::new(vec![]),
        });
        a.merge_from(&b);
        assert_eq!(a.counter("shared_total").get(), 12);
        assert_eq!(a.counter("only_b_total").get(), 1);
        assert!((a.gauge("depth").get() - 4.0).abs() < 1e-12);
        assert_eq!(a.finished_spans().len(), 1);
        // b is untouched.
        assert_eq!(b.counter("shared_total").get(), 7);
    }

    #[test]
    fn merge_from_merges_histograms_bucketwise() {
        let a = Registry::new();
        let b = Registry::new();
        let ha = a.histogram("t_us", &[1.0, 10.0]);
        ha.observe(0.5);
        let hb = b.histogram("t_us", &[1.0, 10.0]);
        hb.observe(5.0);
        hb.observe(50.0);
        b.histogram("only_b_us", &[2.0]).observe(1.0);
        a.merge_from(&b);
        let merged = a.histogram("t_us", &[1.0, 10.0]);
        assert_eq!(merged.count(), 3);
        assert!((merged.sum() - 55.5).abs() < 1e-9);
        assert_eq!(a.histogram("only_b_us", &[2.0]).count(), 1);
    }

    #[test]
    fn merged_counters_match_serial_totals() {
        // Serial run: one registry sees all events. Parallel run: two
        // registries see a partition of the events, then merge. Totals
        // must be identical, down to the rendered snapshot.
        let serial = Registry::new();
        let p1 = Registry::new();
        let p2 = Registry::new();
        for (r, n) in [(&serial, 3u64), (&serial, 4), (&p1, 3), (&p2, 4)] {
            r.counter_with("ops_total", &[("exp", "fig6")]).add(n);
            r.histogram("lat_us", &[1.0, 10.0]).observe(n as f64);
        }
        let merged = Registry::new();
        merged.merge_from(&p1);
        merged.merge_from(&p2);
        assert_eq!(merged.counters_snapshot().values(), serial.counters_snapshot().values());
        assert_eq!(
            merged.histogram("lat_us", &[1.0, 10.0]).count(),
            serial.histogram("lat_us", &[1.0, 10.0]).count()
        );
        assert_eq!(merged.render_prometheus(), serial.render_prometheus());
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), None, "empty slice has no quantiles");
        assert_eq!(quantile_sorted(&[], 0.0), None);
        assert_eq!(quantile_sorted(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile_sorted(&[7.0], 1.0), Some(7.0));
        let xs: Vec<f64> = (0..101).map(f64::from).collect();
        assert_eq!(quantile_sorted(&xs, 0.0), Some(0.0));
        assert_eq!(quantile_sorted(&xs, 0.5), Some(50.0));
        assert_eq!(quantile_sorted(&xs, 0.99), Some(99.0));
        assert_eq!(quantile_sorted(&xs, 1.0), Some(100.0));
        // Out-of-range q clamps.
        assert_eq!(quantile_sorted(&xs, 1.5), Some(100.0));
        assert_eq!(quantile_sorted(&xs, -0.5), Some(0.0));
    }

    #[test]
    fn bucket_helpers_are_strictly_increasing() {
        for edges in [time_buckets_us(), latency_buckets_s()] {
            assert!(edges.len() > 10);
            assert!(edges.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
