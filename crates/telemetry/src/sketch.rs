//! Mergeable streaming quantile sketch (Greenwald–Khanna).
//!
//! [`QuantileSketch`] summarises a stream of `f64` observations in
//! `O((1/eps) * log(eps * n))` space and answers any quantile query with a
//! **deterministic rank-error bound**: for a sketch built by insertion
//! only, the value returned for quantile `q` over `n` observations has
//! true rank within `eps * n + 1` of `q * (n - 1)`.  There is no
//! randomness anywhere in the structure, so a given insertion order
//! always produces the byte-identical summary — a requirement for the
//! serving simulator's reproducibility guarantees.
//!
//! # Merge semantics
//!
//! Two sketches can be merged ([`QuantileSketch::merge`]).  The merged
//! absolute rank error is bounded by the *sum* of the inputs' absolute
//! errors: merging sketches with bounds `e_a * n_a` and `e_b * n_b`
//! yields a bound of `e_a * n_a + e_b * n_b` ranks over `n_a + n_b`
//! observations.  In particular, merging sketches built with the *same*
//! `eps` keeps the relative bound at `eps` (the weighted mean of equal
//! numbers), so replication sweeps can merge per-seed sketches without
//! compounding error.  The summary size after a merge may exceed the
//! pure-streaming bound; `merge` re-compresses to keep it small in
//! practice.
//!
//! # Algorithm
//!
//! The summary is the classic GK tuple list `(v_i, g_i, delta_i)` kept
//! sorted by value, with the invariant `g_i + delta_i <= 2 * eps_n`
//! where `eps_n` is the current absolute error budget in ranks.  Inserts
//! are buffered (up to `1/(2*eps)` values), then folded in with a single
//! sorted merge pass followed by a compress sweep — the standard batched
//! GK implementation, which keeps per-observation cost O(1) amortized.

/// One GK summary tuple: value, covered-rank weight `g`, and rank
/// uncertainty `delta`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GkTuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// A deterministic, mergeable Greenwald–Khanna quantile sketch.
///
/// See the [module docs](self) for the error bound and merge semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Target relative rank error for streaming inserts.
    eps: f64,
    /// Absolute rank-error budget, in ranks. Grows additively on merge;
    /// equals `eps * count` for a pure insert-only sketch.
    err_ranks: f64,
    /// Summary tuples, ascending by `(v, insertion order)`.
    tuples: Vec<GkTuple>,
    /// Pending raw observations, folded in when `buffer_cap` is reached.
    buffer: Vec<f64>,
    /// Buffer capacity: `max(1, 1/(2*eps))`.
    buffer_cap: usize,
    /// Total observations.
    count: u64,
    /// Exact running sum (for `mean`).
    sum: f64,
    /// Exact minimum observed.
    min: f64,
    /// Exact maximum observed.
    max: f64,
}

impl QuantileSketch {
    /// Creates a sketch targeting relative rank error `eps` (e.g. 0.001
    /// keeps every quantile within 0.1% of the true rank).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 0.5`.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        let buffer_cap = ((1.0 / (2.0 * eps.max(f64::MIN_POSITIVE))) as usize).max(1);
        Self::with_buffer_cap(eps, buffer_cap)
    }

    /// Like [`QuantileSketch::new`], but with an explicit observe-buffer
    /// capacity. The rank-error bound is identical for any capacity —
    /// each fold budgets inserted tuples against the *post-batch* count,
    /// so batch size only trades memory for amortized fold cost. Hot
    /// paths observing tens of millions of values (the fleet fast lane)
    /// use a few-KiB buffer to fold ~40× less often than the
    /// `1/(2·eps)` default.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 0.5` and `buffer_cap > 0`.
    #[must_use]
    pub fn with_buffer_cap(eps: f64, buffer_cap: usize) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5), got {eps}");
        assert!(buffer_cap > 0, "buffer_cap must be positive");
        QuantileSketch {
            eps,
            err_ranks: 0.0,
            tuples: Vec::new(),
            buffer: Vec::with_capacity(buffer_cap),
            buffer_cap,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The `eps` this sketch was created with.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Documented absolute rank-error bound, in ranks: any quantile
    /// answer has true rank within `rank_error_ranks() + 1` of the exact
    /// rank. Equals `eps * count` for an insert-only sketch and the sum
    /// of the inputs' bounds after merges.
    #[must_use]
    pub fn rank_error_ranks(&self) -> f64 {
        self.err_ranks.max(self.eps * self.count as f64)
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count + self.buffer.len() as u64
    }

    /// True when no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of all observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Exact minimum observed (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum observed (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of summary tuples currently held (diagnostic; memory use is
    /// proportional to this, not to `count`).
    #[must_use]
    pub fn summary_len(&self) -> usize {
        self.tuples.len() + self.buffer.len()
    }

    /// Records one observation. Non-finite values are ignored (the
    /// serving paths only ever produce finite latencies; skipping NaN
    /// keeps the total order well defined).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buffer.push(v);
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
    }

    /// Folds any buffered observations into the summary. Called
    /// automatically by `observe`/`merge`/`quantile`; public so callers
    /// can bound memory at a known point (e.g. end of a simulation).
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.buffer);
        batch.sort_by(f64::total_cmp);
        let n_new = self.count + batch.len() as u64;
        // Rank budget all new interior tuples are allowed to claim. Using
        // the post-batch count is safe: the invariant only has to hold
        // against the *current* count at query time, which is >= n_new.
        let budget = (2.0 * self.eps * n_new as f64).floor() as u64;
        let delta_new = budget.saturating_sub(1);

        let old = std::mem::take(&mut self.tuples);
        let mut merged = Vec::with_capacity(old.len() + batch.len());
        let mut bi = 0usize;
        for t in old {
            while bi < batch.len() && batch[bi].total_cmp(&t.v).is_lt() {
                merged.push(GkTuple { v: batch[bi], g: 1, delta: delta_new });
                bi += 1;
            }
            merged.push(t);
        }
        while bi < batch.len() {
            merged.push(GkTuple { v: batch[bi], g: 1, delta: delta_new });
            bi += 1;
        }
        // First and last tuples must carry delta 0 so min/max stay exact.
        if let Some(first) = merged.first_mut() {
            first.delta = 0;
        }
        if let Some(last) = merged.last_mut() {
            last.delta = 0;
        }
        self.tuples = merged;
        self.count = n_new;
        self.buffer = Vec::with_capacity(self.buffer_cap);
        self.compress();
    }

    /// Merges neighbouring tuples whose combined span fits the error
    /// budget, keeping the summary at `O((1/eps) log(eps n))` tuples.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let budget = (2.0 * self.rank_error_ranks()).floor() as u64;
        let mut out: Vec<GkTuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        // Never merge into the last tuple; it pins the exact maximum.
        let last = self.tuples[self.tuples.len() - 1];
        for &t in &self.tuples[1..self.tuples.len() - 1] {
            // Merge the previous tuple forward into `t` when the combined
            // coverage still satisfies the GK invariant and the previous
            // tuple is not the exact-minimum sentinel.
            let mergeable = out.len() > 1
                && out.last().is_some_and(|prev| prev.g + t.g + t.delta <= budget);
            if mergeable {
                let prev = out.last_mut().expect("len > 1");
                let g = prev.g + t.g;
                *prev = GkTuple { v: t.v, g, delta: t.delta };
            } else {
                out.push(t);
            }
        }
        out.push(last);
        self.tuples = out;
    }

    /// Merges `other` into `self`.
    ///
    /// The merged absolute rank-error bound is the sum of the two
    /// inputs' bounds (see the [module docs](self)); sketches built with
    /// equal `eps` therefore merge without losing the relative bound.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.is_empty() {
            return;
        }
        let mut rhs = other.clone();
        rhs.flush();
        self.flush();
        let rhs_err = rhs.rank_error_ranks();
        if self.tuples.is_empty() {
            self.tuples = rhs.tuples;
            self.count = rhs.count;
            self.err_ranks = rhs_err;
            self.sum += rhs.sum;
            self.min = self.min.min(rhs.min);
            self.max = self.max.max(rhs.max);
            return;
        }

        let a = std::mem::take(&mut self.tuples);
        let b = rhs.tuples;
        let mut merged: Vec<GkTuple> = Vec::with_capacity(a.len() + b.len());
        let (mut ai, mut bi) = (0usize, 0usize);
        // Standard mergeable-summary combine: a tuple keeps its own
        // uncertainty plus the rank spread of the *other* summary around
        // its position, i.e. the next not-yet-consumed tuple on the other
        // side contributes `g + delta - 1`.
        while ai < a.len() || bi < b.len() {
            let take_a = match (a.get(ai), b.get(bi)) {
                (Some(x), Some(y)) => x.v.total_cmp(&y.v).is_le(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop guard"),
            };
            let (t, other_next) = if take_a {
                ai += 1;
                (a[ai - 1], b.get(bi))
            } else {
                bi += 1;
                (b[bi - 1], a.get(ai))
            };
            let extra = other_next.map_or(0, |n| (n.g + n.delta).saturating_sub(1));
            merged.push(GkTuple { v: t.v, g: t.g, delta: t.delta + extra });
        }
        if let Some(first) = merged.first_mut() {
            first.delta = 0;
        }
        if let Some(last) = merged.last_mut() {
            last.delta = 0;
        }
        self.err_ranks = self.rank_error_ranks() + rhs_err;
        self.count += rhs.count;
        self.sum += rhs.sum;
        self.min = self.min.min(rhs.min);
        self.max = self.max.max(rhs.max);
        self.tuples = merged;
        self.compress();
    }

    /// Returns a value whose rank is within `rank_error_ranks() + 1` of
    /// rank `q * (count - 1)`, or `None` for an empty sketch — an empty
    /// stream has no quantiles, and the old 0.0 answer silently poisoned
    /// downstream SLO math. `q` is clamped to `[0, 1]`; `q == 0` and
    /// `q == 1` are exact (min/max).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Fold pending buffer into a scratch clone; queries are rare
        // (report time) while observes are hot, so the cost lands here.
        if !self.buffer.is_empty() {
            let mut scratch = self.clone();
            scratch.flush();
            return scratch.quantile(q);
        }
        let n = self.count as f64;
        // Nearest-rank target matching `quantile_sorted` (1-based).
        let r = (q * (n - 1.0)).round() + 1.0;
        let allowed = self.rank_error_ranks() + 1.0;
        let mut rmin = 0u64;
        let mut best = self.tuples[self.tuples.len() - 1].v;
        for t in &self.tuples {
            rmin += t.g;
            let rmax = rmin + t.delta;
            if r - (rmin as f64) <= allowed && (rmax as f64) - r <= allowed {
                best = t.v;
                break;
            }
            if (rmin as f64) > r + allowed {
                break;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact rank band of `v` in sorted data: (first index, last index).
    fn rank_band(sorted: &[f64], v: f64) -> (f64, f64) {
        let lo = sorted.partition_point(|x| x.total_cmp(&v).is_lt());
        let hi = sorted.partition_point(|x| x.total_cmp(&v).is_le());
        (lo as f64, (hi.max(lo + 1) - 1) as f64)
    }

    fn assert_within_bound(sketch: &QuantileSketch, sorted: &[f64], q: f64) {
        let got = sketch.quantile(q).expect("non-empty sketch");
        let target = q * (sorted.len() as f64 - 1.0);
        let (lo, hi) = rank_band(sorted, got);
        let bound = sketch.rank_error_ranks() + 1.0;
        let dist = if target < lo {
            lo - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        };
        assert!(
            dist <= bound,
            "q={q}: got {got} with rank band [{lo}, {hi}], target rank {target}, \
             bound {bound} (off by {dist})"
        );
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn large_observe_buffer_keeps_the_rank_bound() {
        // The fleet fast lane batches folds through a multi-KiB buffer;
        // the eps guarantee must not depend on the buffer capacity.
        let mut state = 7u64;
        let mut small = QuantileSketch::new(0.01);
        let mut big = QuantileSketch::with_buffer_cap(0.01, 4096);
        let mut data = Vec::new();
        for _ in 0..60_000 {
            let v = (splitmix(&mut state) as f64 / u64::MAX as f64).powi(3) * 100.0;
            small.observe(v);
            big.observe(v);
            data.push(v);
        }
        data.sort_by(f64::total_cmp);
        // Flush so `rank_error_ranks` sees the full count (queries fold
        // pending buffers into a scratch clone with the same count).
        small.flush();
        big.flush();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            assert_within_bound(&small, &data, q);
            assert_within_bound(&big, &data, q);
        }
        assert_eq!(big.count(), 60_000);
        assert_eq!(big.min(), data[0]);
        assert_eq!(big.max(), data[data.len() - 1]);
    }

    fn uniform(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn quantiles_within_bound_on_heavy_tailed_data() {
        let mut state = 42u64;
        let mut sketch = QuantileSketch::new(0.005);
        let mut data: Vec<f64> = Vec::new();
        for _ in 0..50_000 {
            // Log-normal-ish: heavy upper tail like serving latencies.
            let v = (-(1.0 - uniform(&mut state)).ln()).powf(2.0);
            sketch.observe(v);
            data.push(v);
        }
        data.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_within_bound(&sketch, &data, q);
        }
        assert_eq!(sketch.count(), 50_000);
        assert_eq!(sketch.min(), data[0]);
        assert_eq!(sketch.max(), *data.last().unwrap());
        let exact_mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!((sketch.mean() - exact_mean).abs() < 1e-9);
    }

    #[test]
    fn summary_is_sublinear_in_n() {
        let mut state = 7u64;
        let mut sketch = QuantileSketch::new(0.001);
        for _ in 0..200_000 {
            sketch.observe(uniform(&mut state));
        }
        sketch.flush();
        assert!(
            sketch.summary_len() < 20_000,
            "summary grew to {} tuples for 200k inserts",
            sketch.summary_len()
        );
    }

    #[test]
    fn merge_matches_bound_and_is_deterministic() {
        let mut state = 9u64;
        let mut all: Vec<f64> = Vec::new();
        let mut parts: Vec<QuantileSketch> = Vec::new();
        for _ in 0..4 {
            let mut s = QuantileSketch::new(0.002);
            for _ in 0..10_000 {
                let v = uniform(&mut state) * 3.0;
                s.observe(v);
                all.push(v);
            }
            parts.push(s);
        }
        let mut merged = QuantileSketch::new(0.002);
        for p in &parts {
            merged.merge(p);
        }
        let mut merged2 = QuantileSketch::new(0.002);
        for p in &parts {
            merged2.merge(p);
        }
        assert_eq!(merged, merged2, "merge must be deterministic");
        all.sort_by(f64::total_cmp);
        // Documented: absolute errors add — 4 parts of eps*10k each.
        let expect = 0.002 * 40_000.0;
        assert!(
            merged.rank_error_ranks() <= expect + 1e-9,
            "bound {} exceeds sum-of-parts {expect}",
            merged.rank_error_ranks()
        );
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_within_bound(&merged, &all, q);
        }
        assert_eq!(merged.count(), 40_000);
    }

    #[test]
    fn tiny_streams_are_exact_at_extremes() {
        let mut s = QuantileSketch::new(0.01);
        for v in [5.0, 1.0, 3.0] {
            s.observe(v);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.count(), 3);
        let med = s.quantile(0.5).expect("non-empty");
        assert!((1.0..=5.0).contains(&med));
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new(0.01);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None, "empty sketch must answer None");
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
        assert_eq!(s.mean(), 0.0);
        let mut m = QuantileSketch::new(0.01);
        m.merge(&s);
        assert!(m.is_empty());
        assert_eq!(m.quantile(0.99), None, "merging an empty sketch stays empty");
    }

    #[test]
    #[should_panic(expected = "eps must be in (0, 0.5)")]
    fn rejects_bad_eps() {
        let _ = QuantileSketch::new(0.5);
    }

    #[test]
    fn nan_and_infinity_are_ignored() {
        let mut s = QuantileSketch::new(0.01);
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(2.0));
    }
}
