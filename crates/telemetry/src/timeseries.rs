//! Windowed time-series aggregation with a bounded memory footprint.
//!
//! A [`WindowedSeries`] partitions simulated time `[0, ∞)` into
//! fixed-width windows and keeps one aggregate value per window. The
//! number of retained windows is capped: when an observation lands past
//! the cap, the window width doubles and adjacent windows fold together
//! (pairwise [`WindowValue::merge`]), so the series always covers the
//! whole run at the coarsest resolution that fits the cap. Folding is a
//! pure function of the observation sequence, which keeps the series
//! byte-deterministic for a deterministic simulator.
//!
//! Two series with the same base window width are mergeable even after
//! they folded a different number of times — widths only ever double,
//! so both widths are `base · 2^k` and the finer series can be coarsened
//! to the coarser one before an element-wise merge. This is what lets
//! the serving experiments aggregate per-seed timelines produced on the
//! `run_cells_with` worker pool into one cluster timeline, independent
//! of `--jobs`.

use std::fmt::Debug;

/// Aggregate stored per window. `Default` is the empty window; `merge`
/// must be commutative-enough for the caller's semantics (the serving
/// windows sum counts and merge quantile sketches).
pub trait WindowValue: Clone + Default {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// A bounded ring of per-window aggregates over simulated time.
///
/// Windows are half-open: window `i` (at the current width `w`) covers
/// `[i·w, (i+1)·w)`. See the module docs for the fold-on-overflow and
/// merge semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries<V> {
    base_window_s: f64,
    window_s: f64,
    cap: usize,
    windows: Vec<V>,
}

impl<V: WindowValue> WindowedSeries<V> {
    /// A new series with the given base window width (seconds of
    /// simulated time) retaining at most `cap` windows before folding.
    ///
    /// # Panics
    ///
    /// Panics unless `window_s > 0` and `cap >= 2`.
    #[must_use]
    pub fn new(window_s: f64, cap: usize) -> Self {
        assert!(window_s > 0.0, "window width must be positive");
        assert!(cap >= 2, "need at least two windows to fold");
        WindowedSeries {
            base_window_s: window_s,
            window_s,
            cap,
            windows: Vec::new(),
        }
    }

    /// The width the series was created with.
    #[must_use]
    pub fn base_window_s(&self) -> f64 {
        self.base_window_s
    }

    /// The current window width — `base · 2^folds`.
    #[must_use]
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Number of windows currently materialized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been touched yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Maximum number of windows retained before folding.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The window at index `i`, if materialized.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&V> {
        self.windows.get(i)
    }

    /// Iterates `(window_start_s, window_end_s, value)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, &V)> {
        let w = self.window_s;
        self.windows
            .iter()
            .enumerate()
            .map(move |(i, v)| (i as f64 * w, (i + 1) as f64 * w, v))
    }

    /// Doubles the window width, folding adjacent pairs. A trailing
    /// unpaired window survives as-is at the new width.
    fn fold(&mut self) {
        let mut folded: Vec<V> = Vec::with_capacity(self.windows.len().div_ceil(2));
        let mut it = self.windows.drain(..);
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(&b);
            }
            folded.push(a);
        }
        drop(it);
        self.windows = folded;
        self.window_s *= 2.0;
    }

    /// Materializes (with defaults) every window up to and including
    /// `idx` at the *current* width, folding first if `idx` would
    /// overflow the cap. Returns the index re-expressed at the width in
    /// effect after any folds.
    fn ensure_index(&mut self, t_s: f64) -> usize {
        loop {
            let idx = (t_s / self.window_s) as usize;
            if idx < self.cap {
                if self.windows.len() <= idx {
                    self.windows.resize_with(idx + 1, V::default);
                }
                return idx;
            }
            self.fold();
        }
    }

    /// Applies `f` to the window containing simulated time `t_s`
    /// (which must be `>= 0`).
    pub fn observe_at(&mut self, t_s: f64, f: impl FnOnce(&mut V)) {
        debug_assert!(t_s >= 0.0, "negative simulated time");
        let idx = self.ensure_index(t_s.max(0.0));
        f(&mut self.windows[idx]);
    }

    /// Applies `f(window, overlap_s)` to every window overlapping the
    /// half-open span `[t0_s, t1_s)`, where `overlap_s` is the length of
    /// the intersection. Used to spread span-shaped quantities (GPU busy
    /// time, queue-depth integrals) across window boundaries.
    pub fn observe_span(&mut self, t0_s: f64, t1_s: f64, mut f: impl FnMut(&mut V, f64)) {
        debug_assert!(t0_s >= 0.0 && t1_s >= t0_s, "bad span [{t0_s}, {t1_s})");
        let t0 = t0_s.max(0.0);
        let t1 = t1_s.max(t0);
        if t1 <= t0 {
            return;
        }
        loop {
            let w = self.window_s;
            let first = (t0 / w) as usize;
            // Last window with a non-empty intersection with [t0, t1):
            // an exact-boundary t1 does not spill into the next window.
            let last = ((t1 / w).ceil() as usize).saturating_sub(1).max(first);
            if last >= self.cap {
                self.fold();
                continue;
            }
            if self.windows.len() <= last {
                self.windows.resize_with(last + 1, V::default);
            }
            for (i, win) in self.windows[first..=last].iter_mut().enumerate() {
                let lo = ((first + i) as f64) * w;
                let overlap = t1.min(lo + w) - t0.max(lo);
                if overlap > 0.0 {
                    f(win, overlap);
                }
            }
            return;
        }
    }

    /// Merges another series into this one. The other series must share
    /// this one's base width and cap; whichever side is finer is
    /// coarsened (folded) to the coarser width first, then windows merge
    /// element-wise.
    ///
    /// # Panics
    ///
    /// Panics on mismatched base width or cap.
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.base_window_s == other.base_window_s && self.cap == other.cap,
            "WindowedSeries merge requires identical base width and cap"
        );
        let mut other = other.clone();
        while self.window_s < other.window_s {
            self.fold();
        }
        while other.window_s < self.window_s {
            other.fold();
        }
        if self.windows.len() < other.windows.len() {
            self.windows.resize_with(other.windows.len(), V::default);
        }
        for (dst, src) in self.windows.iter_mut().zip(other.windows.iter()) {
            dst.merge(src);
        }
    }

    /// Merges an iterator of series into one, in iteration order — the
    /// fleet path for rolling per-cluster timelines up into one
    /// fleet-wide timeline. Returns `None` for an empty iterator.
    ///
    /// # Panics
    ///
    /// Panics if the series disagree on base width or cap (as
    /// [`WindowedSeries::merge_from`] does).
    pub fn merged<'a, I>(mut series: I) -> Option<Self>
    where
        I: Iterator<Item = &'a Self>,
        V: 'a,
    {
        let mut out = series.next()?.clone();
        for s in series {
            out.merge_from(s);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Default, PartialEq)]
    struct Sum {
        n: u64,
        weight_s: f64,
    }

    impl WindowValue for Sum {
        fn merge(&mut self, other: &Self) {
            self.n += other.n;
            self.weight_s += other.weight_s;
        }
    }

    fn counts(s: &WindowedSeries<Sum>) -> Vec<u64> {
        s.iter().map(|(_, _, v)| v.n).collect()
    }

    #[test]
    fn observations_land_in_their_window() {
        let mut s: WindowedSeries<Sum> = WindowedSeries::new(1.0, 8);
        for t in [0.0, 0.5, 1.0, 2.9] {
            s.observe_at(t, |v| v.n += 1);
        }
        assert_eq!(counts(&s), vec![2, 1, 1]);
        let spans: Vec<(f64, f64)> = s.iter().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(spans, vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
    }

    #[test]
    fn overflow_folds_pairwise_and_doubles_width() {
        let mut s: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        for t in 0..4 {
            s.observe_at(t as f64 + 0.5, |v| v.n += 1);
        }
        assert_eq!(counts(&s), vec![1, 1, 1, 1]);
        // Window index 4 at width 1 overflows cap 4 → fold to width 2.
        s.observe_at(4.5, |v| v.n += 10);
        assert_eq!(s.window_s(), 2.0);
        assert_eq!(counts(&s), vec![2, 2, 10]);
        // Total is conserved across folds.
        let total: u64 = counts(&s).iter().sum();
        assert_eq!(total, 14);
    }

    #[test]
    fn observe_span_splits_across_boundaries() {
        let mut s: WindowedSeries<Sum> = WindowedSeries::new(1.0, 8);
        s.observe_span(0.5, 2.25, |v, o| v.weight_s += o);
        let w: Vec<f64> = s.iter().map(|(_, _, v)| v.weight_s).collect();
        assert_eq!(w.len(), 3);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
        assert!((w[2] - 0.25).abs() < 1e-12);
        // Exact boundary end: no spill into the next window.
        let mut s2: WindowedSeries<Sum> = WindowedSeries::new(1.0, 8);
        s2.observe_span(0.0, 2.0, |v, o| v.weight_s += o);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn observe_span_total_conserved_across_folds() {
        let mut s: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        let mut expected = 0.0;
        for i in 0..20 {
            let t0 = i as f64 * 0.7;
            let t1 = t0 + 0.6;
            expected += 0.6;
            s.observe_span(t0, t1, |v, o| v.weight_s += o);
        }
        let total: f64 = s.iter().map(|(_, _, v)| v.weight_s).sum();
        assert!((total - expected).abs() < 1e-9, "total {total} vs {expected}");
        assert!(s.len() <= 4);
    }

    #[test]
    fn merge_aligns_mismatched_fold_depths() {
        // Fine series: width 1, never folded. Coarse: folded twice.
        let mut fine: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        for t in 0..4 {
            fine.observe_at(t as f64, |v| v.n += 1);
        }
        let mut coarse: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        for t in 0..16 {
            coarse.observe_at(t as f64, |v| v.n += 1);
        }
        assert_eq!(coarse.window_s(), 4.0);
        let mut merged = fine.clone();
        merged.merge_from(&coarse);
        assert_eq!(merged.window_s(), 4.0);
        assert_eq!(counts(&merged), vec![8, 4, 4, 4]);
        // Merge in the other direction gives the same totals.
        let mut merged2 = coarse.clone();
        merged2.merge_from(&fine);
        assert_eq!(counts(&merged2), counts(&merged));
    }

    #[test]
    fn merge_order_independent_totals() {
        let mk = |offset: u64| {
            let mut s: WindowedSeries<Sum> = WindowedSeries::new(0.5, 8);
            for t in 0..6 {
                s.observe_at(t as f64 * 0.9, |v| v.n += offset + t);
            }
            s
        };
        let (a, b) = (mk(1), mk(100));
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "identical base width")]
    fn merge_rejects_mismatched_base() {
        let mut a: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        let b: WindowedSeries<Sum> = WindowedSeries::new(2.0, 4);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "identical base width")]
    fn merge_rejects_mismatched_cap() {
        let mut a: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        let b: WindowedSeries<Sum> = WindowedSeries::new(1.0, 8);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "identical base width")]
    fn merge_rejects_folded_width_that_masquerades_as_aligned() {
        // A folded series reports window_s == 2.0, the same *current*
        // width as a base-2.0 series — but merge keys on the base width,
        // so the pair is still rejected: their fold lattices differ.
        let mut folded: WindowedSeries<Sum> = WindowedSeries::new(1.0, 4);
        for t in 0..8 {
            folded.observe_at(t as f64, |v| v.n += 1);
        }
        assert_eq!(folded.window_s(), 2.0);
        let native: WindowedSeries<Sum> = WindowedSeries::new(2.0, 4);
        folded.merge_from(&native);
    }

    #[test]
    fn merged_rolls_many_series_into_one() {
        let mut parts: Vec<WindowedSeries<Sum>> = Vec::new();
        for k in 0..3u64 {
            let mut s: WindowedSeries<Sum> = WindowedSeries::new(1.0, 8);
            for t in 0..4 {
                s.observe_at(t as f64, |v| v.n += k + 1);
            }
            parts.push(s);
        }
        let merged = WindowedSeries::merged(parts.iter()).expect("non-empty");
        // 1 + 2 + 3 per window.
        assert_eq!(counts(&merged), vec![6, 6, 6, 6]);
        assert!(WindowedSeries::<Sum>::merged(std::iter::empty()).is_none());
    }
}
