//! Property test for the documented `QuantileSketch` merge bound.
//!
//! The sketch docs promise: a merged sketch answers any quantile with
//! true rank within `rank_error_ranks() + 1` of the exact rank, where
//! the merged budget is the *sum* of the inputs' budgets (`eps·n_a +
//! eps·n_b` for equal-eps inputs, i.e. `eps·n + 1` over the pooled
//! stream). This exercises the adversarial case for a mergeable
//! summary: two *disjoint* value ranges, so every tuple of one input
//! lands entirely inside a gap of the other.

use mmg_telemetry::QuantileSketch;
use proptest::prelude::*;

/// Exact rank band `[first, last]` of `v` in ascending-sorted data.
fn rank_band(sorted: &[f64], v: f64) -> (f64, f64) {
    let lo = sorted.partition_point(|x| x.total_cmp(&v).is_lt());
    let hi = sorted.partition_point(|x| x.total_cmp(&v).is_le());
    (lo as f64, (hi.max(lo + 1) - 1) as f64)
}

/// Distance (in ranks) from the exact pooled quantile's rank — the
/// nearest-rank index `quantile_sorted` would pick — to the band of
/// ranks the sketch's answer actually occupies.
fn rank_distance(sorted: &[f64], got: f64, q: f64) -> f64 {
    let target = (q * (sorted.len() as f64 - 1.0)).round();
    let (lo, hi) = rank_band(sorted, got);
    if target < lo {
        lo - target
    } else if target > hi {
        target - hi
    } else {
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merged_disjoint_streams_respect_rank_bound(
        n_lo in 200usize..4000,
        n_hi in 200usize..4000,
        eps_mil in 1u64..20,
        raw in proptest::collection::vec(0.0f64..1.0, 400..8400),
    ) {
        let eps = eps_mil as f64 / 1000.0;
        let n_lo = n_lo.min(raw.len() / 2);
        let n_hi = n_hi.min(raw.len() - n_lo);
        prop_assume!(n_lo >= 100 && n_hi >= 100);

        // Two disjoint streams: [0, 1) and [2, 3) — no interleaving of
        // values, so the merge cannot hide error inside shared tuples.
        let mut low = QuantileSketch::new(eps);
        let mut high = QuantileSketch::new(eps);
        let mut pooled: Vec<f64> = Vec::with_capacity(n_lo + n_hi);
        for &u in raw.iter().take(n_lo) {
            low.observe(u);
            pooled.push(u);
        }
        for &u in raw.iter().skip(n_lo).take(n_hi) {
            high.observe(2.0 + u);
            pooled.push(2.0 + u);
        }
        pooled.sort_by(f64::total_cmp);
        let n = pooled.len() as f64;

        // Merge in both orders; both must respect the bound.
        let mut merged_ab = low.clone();
        merged_ab.merge(&high);
        let mut merged_ba = high.clone();
        merged_ba.merge(&low);

        for merged in [&merged_ab, &merged_ba] {
            prop_assert_eq!(merged.count(), pooled.len() as u64);
            // The documented budget: ±(eps·n + 1) ranks for equal-eps
            // inputs. rank_error_ranks() must not exceed it...
            prop_assert!(
                merged.rank_error_ranks() <= eps * n + 1e-9,
                "advertised bound {} exceeds eps*n = {}",
                merged.rank_error_ranks(),
                eps * n
            );
            // ...and every quantile answer must sit within it of the
            // exact pooled quantile's rank.
            for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                let got = merged.quantile(q).expect("non-empty merged sketch");
                let dist = rank_distance(&pooled, got, q);
                let bound = eps * n + 1.0;
                prop_assert!(
                    dist <= bound,
                    "q={q}: answer {got} is {dist} ranks from target (bound {bound}, \
                     eps={eps}, n={n})"
                );
            }
            // Extremes stay exact across the disjoint merge.
            prop_assert_eq!(merged.quantile(0.0), Some(pooled[0]));
            prop_assert_eq!(merged.quantile(1.0), Some(*pooled.last().unwrap()));
        }
    }
}
