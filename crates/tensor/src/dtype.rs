//! Element data types.
//!
//! The numeric plane always computes in `f32`; dtypes exist so the
//! performance plane can account for memory traffic at the precision the
//! paper profiles (FP16 weights/activations on A100).

use std::fmt;

/// Element type of a tensor, used for byte accounting.
///
/// The numeric executor stores everything as `f32` regardless of the
/// declared dtype; the dtype only affects [`DType::size_bytes`] and thus the
/// simulated memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// IEEE 754 half precision (2 bytes). The paper assumes FP16 inference.
    F16,
    /// bfloat16 (2 bytes).
    Bf16,
    /// IEEE 754 single precision (4 bytes).
    F32,
    /// 64-bit signed integer, used for token ids (8 bytes).
    I64,
    /// Unsigned byte, used for decoded image pixels (1 byte).
    U8,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// assert_eq!(mmg_tensor::DType::F16.size_bytes(), 2);
    /// ```
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
            DType::I64 => 8,
            DType::U8 => 1,
        }
    }

    /// Whether the type is a floating-point type.
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F16 | DType::Bf16 | DType::F32)
    }
}

impl Default for DType {
    /// FP16 is the default because the paper profiles FP16 inference.
    fn default() -> Self {
        DType::F16
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::U8 => "u8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_correct() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::U8.size_bytes(), 1);
    }

    #[test]
    fn float_classification() {
        assert!(DType::F16.is_float());
        assert!(DType::Bf16.is_float());
        assert!(DType::F32.is_float());
        assert!(!DType::I64.is_float());
        assert!(!DType::U8.is_float());
    }

    #[test]
    fn default_is_f16() {
        assert_eq!(DType::default(), DType::F16);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::I64.to_string(), "i64");
    }
}
