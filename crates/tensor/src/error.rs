//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Left-hand / expected shape.
        lhs: Vec<usize>,
        /// Right-hand / actual shape.
        rhs: Vec<usize>,
    },
    /// The number of data elements does not match the shape's element count.
    DataLengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// A shape is structurally invalid for the requested operation.
    InvalidShape {
        /// Operation name.
        op: &'static str,
        /// Explanation of the violated requirement.
        reason: String,
    },
    /// An axis index is out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// A parameter (stride, group count, scale factor, …) is invalid.
    InvalidParameter {
        /// Operation name.
        op: &'static str,
        /// Explanation of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::DataLengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape element count {expected}")
            }
            TensorError::InvalidShape { op, reason } => {
                write!(f, "invalid shape for {op}: {reason}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidParameter { op, reason } => {
                write!(f, "invalid parameter for {op}: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::ShapeMismatch { op: "matmul", lhs: vec![2, 3], rhs: vec![4, 5] };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("[2, 3]"));

        let e = TensorError::DataLengthMismatch { expected: 6, actual: 5 };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
