//! # mmg-tensor
//!
//! A small, dependency-light CPU tensor engine used as the *numeric plane*
//! of the mmgen workload-characterization suite.
//!
//! The performance simulation in `mmg-gpu` never touches real numbers —
//! it propagates shapes, FLOPs and bytes. This crate exists so that the same
//! operator graphs can also be *executed for real* at reduced sizes, which
//! lets the test suite prove properties such as:
//!
//! * shape inference agrees with actual execution,
//! * the tiled (flash) attention lowering is numerically identical to the
//!   baseline attention it replaces,
//! * convolution / normalization / resampling arithmetic is correct.
//!
//! # Example
//!
//! ```
//! use mmg_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), mmg_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod dtype;
mod error;
mod shape;
mod tensor;

pub mod ops;

pub use dtype::DType;
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
