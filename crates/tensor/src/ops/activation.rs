//! Pointwise activation functions.

use crate::Tensor;

fn map(x: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = x.data().iter().map(|&v| f(v)).collect();
    Tensor::from_vec(data, x.shape().dims()).expect("same element count")
}

/// SiLU (swish): `x · sigmoid(x)`. Used throughout diffusion UNets.
#[must_use]
pub fn silu(x: &Tensor) -> Tensor {
    map(x, |v| v / (1.0 + (-v).exp()))
}

/// Tanh-approximated GELU, as used in transformer feed-forward blocks.
#[must_use]
pub fn gelu(x: &Tensor) -> Tensor {
    map(x, |v| {
        0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh())
    })
}

/// Rectified linear unit.
#[must_use]
pub fn relu(x: &Tensor) -> Tensor {
    map(x, |v| v.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_known_values() {
        let x = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[3]).unwrap();
        let y = silu(&x);
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.731_058_6).abs() < 1e-5);
        assert!((y.data()[2] + 0.268_941_4).abs() < 1e-5);
    }

    #[test]
    fn gelu_known_values() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
        let y = gelu(&x);
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.841_192).abs() < 1e-3);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn activations_preserve_shape() {
        let x = Tensor::randn(&[2, 3, 4], 14);
        assert_eq!(silu(&x).shape(), x.shape());
        assert_eq!(gelu(&x).shape(), x.shape());
        assert_eq!(relu(&x).shape(), x.shape());
    }

    #[test]
    fn activations_monotone_on_samples() {
        // SiLU and GELU are monotone for x >= 0.
        let xs: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
        let t = Tensor::from_vec(xs, &[100]).unwrap();
        for f in [silu, gelu, relu] {
            let y = f(&t);
            for w in y.data().windows(2) {
                assert!(w[1] >= w[0] - 1e-6);
            }
        }
    }
}
