//! Concatenation and splitting — the UNet's skip connections.

use crate::{Result, Shape, Tensor, TensorError};

/// Concatenates tensors along `axis`. All other extents must agree.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for an empty input list or an
/// out-of-range axis, and [`TensorError::ShapeMismatch`] if non-`axis`
/// extents disagree.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
    let first = tensors.first().ok_or(TensorError::InvalidParameter {
        op: "concat",
        reason: "empty tensor list".into(),
    })?;
    let rank = first.shape().rank();
    if axis >= rank {
        return Err(TensorError::AxisOutOfRange { axis, rank });
    }
    let mut out_dims = first.shape().dims().to_vec();
    for t in &tensors[1..] {
        let d = t.shape().dims();
        if d.len() != rank
            || d.iter().zip(out_dims.iter()).enumerate().any(|(i, (a, b))| i != axis && a != b)
        {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: out_dims,
                rhs: d.to_vec(),
            });
        }
        out_dims[axis] += d[axis];
    }
    let out_shape = Shape::new(&out_dims);
    // Row-major: iterate over the outer block, copying each tensor's slab.
    let outer: usize = out_dims[..axis].iter().product();
    let inner: usize = out_dims[axis + 1..].iter().product();
    let mut data = Vec::with_capacity(out_shape.numel());
    for o in 0..outer {
        for t in tensors {
            let t_axis = t.shape().dims()[axis];
            let slab = t_axis * inner;
            data.extend_from_slice(&t.data()[o * slab..(o + 1) * slab]);
        }
    }
    Tensor::from_vec(data, &out_dims)
}

/// Splits a tensor into `parts` equal chunks along `axis`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `parts` is zero or does not
/// divide the axis extent, and [`TensorError::AxisOutOfRange`] for a bad
/// axis.
pub fn chunk(t: &Tensor, parts: usize, axis: usize) -> Result<Vec<Tensor>> {
    let rank = t.shape().rank();
    if axis >= rank {
        return Err(TensorError::AxisOutOfRange { axis, rank });
    }
    let extent = t.shape().dims()[axis];
    if parts == 0 || !extent.is_multiple_of(parts) {
        return Err(TensorError::InvalidParameter {
            op: "chunk",
            reason: format!("axis extent {extent} not divisible into {parts} parts"),
        });
    }
    let part_extent = extent / parts;
    let mut part_dims = t.shape().dims().to_vec();
    part_dims[axis] = part_extent;
    let outer: usize = t.shape().dims()[..axis].iter().product();
    let inner: usize = t.shape().dims()[axis + 1..].iter().product();
    let slab = part_extent * inner;
    let mut out = Vec::with_capacity(parts);
    for p in 0..parts {
        let mut data = Vec::with_capacity(outer * slab);
        for o in 0..outer {
            let base = o * extent * inner + p * slab;
            data.extend_from_slice(&t.data()[base..base + slab]);
        }
        out.push(Tensor::from_vec(data, &part_dims)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_axis0() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_channel_axis_matches_unet_skip() {
        // [1, 2, 2, 2] ++ [1, 3, 2, 2] along channels.
        let a = Tensor::randn(&[1, 2, 2, 2], 1);
        let b = Tensor::randn(&[1, 3, 2, 2], 2);
        let c = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.shape().dims(), &[1, 5, 2, 2]);
        assert_eq!(c.at(&[0, 0, 1, 1]), a.at(&[0, 0, 1, 1]));
        assert_eq!(c.at(&[0, 2, 0, 0]), b.at(&[0, 0, 0, 0]));
        assert_eq!(c.at(&[0, 4, 1, 0]), b.at(&[0, 2, 1, 0]));
    }

    #[test]
    fn concat_rejects_mismatch() {
        let a = Tensor::zeros(&[1, 2, 2, 2]);
        let b = Tensor::zeros(&[1, 3, 2, 3]);
        assert!(concat(&[&a, &b], 1).is_err());
        assert!(concat(&[], 0).is_err());
        assert!(concat(&[&a], 9).is_err());
    }

    #[test]
    fn chunk_then_concat_roundtrips() {
        let t = Tensor::randn(&[2, 6, 3], 3);
        for axis in 0..3 {
            let parts = t.shape().dims()[axis];
            if parts == 0 {
                continue;
            }
            let chunks = chunk(&t, parts, axis).unwrap();
            let refs: Vec<&Tensor> = chunks.iter().collect();
            let back = concat(&refs, axis).unwrap();
            assert_eq!(back, t, "axis {axis}");
        }
    }

    #[test]
    fn chunk_validates() {
        let t = Tensor::zeros(&[2, 6]);
        assert!(chunk(&t, 4, 1).is_err(), "6 not divisible by 4");
        assert!(chunk(&t, 0, 1).is_err());
        assert!(chunk(&t, 2, 5).is_err());
        assert_eq!(chunk(&t, 3, 1).unwrap().len(), 3);
    }

    #[test]
    fn multihead_split_use_case() {
        // [seq, heads*dim] -> heads x [seq, dim], the attention head split.
        let t = Tensor::randn(&[4, 8], 4);
        let heads = chunk(&t, 2, 1).unwrap();
        assert_eq!(heads[0].shape().dims(), &[4, 4]);
        assert_eq!(heads[1].at(&[2, 1]), t.at(&[2, 5]));
    }
}
