//! 2-D convolution.

use crate::{Result, Tensor, TensorError};

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, padding: 0 }
    }
}

impl Conv2dParams {
    /// Stride-1 convolution with "same" padding for odd kernel size `k`.
    #[must_use]
    pub fn same(k: usize) -> Self {
        Conv2dParams { stride: 1, padding: k / 2 }
    }

    /// Output spatial extent for input extent `i` and kernel extent `k`.
    #[must_use]
    pub fn out_extent(&self, i: usize, k: usize) -> usize {
        (i + 2 * self.padding).saturating_sub(k) / self.stride + 1
    }
}

/// Direct 2-D convolution: input `[n, c_in, h, w]`, weight
/// `[c_out, c_in, kh, kw]`, optional bias `[c_out]` → `[n, c_out, h', w']`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for wrong ranks,
/// [`TensorError::ShapeMismatch`] if channel counts disagree, and
/// [`TensorError::InvalidParameter`] for a zero stride.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor> {
    if params.stride == 0 {
        return Err(TensorError::InvalidParameter { op: "conv2d", reason: "stride must be > 0".into() });
    }
    if input.shape().rank() != 4 || weight.shape().rank() != 4 {
        return Err(TensorError::InvalidShape {
            op: "conv2d",
            reason: format!("expected rank-4 input/weight, got {} and {}", input.shape(), weight.shape()),
        });
    }
    let [n, c_in, h, w] = [
        input.shape().dims()[0],
        input.shape().dims()[1],
        input.shape().dims()[2],
        input.shape().dims()[3],
    ];
    let [c_out, c_in2, kh, kw] = [
        weight.shape().dims()[0],
        weight.shape().dims()[1],
        weight.shape().dims()[2],
        weight.shape().dims()[3],
    ];
    if c_in != c_in2 {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.shape().dims().to_vec(),
            rhs: weight.shape().dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.shape().dims() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d(bias)",
                lhs: vec![c_out],
                rhs: b.shape().dims().to_vec(),
            });
        }
    }
    let oh = params.out_extent(h, kh);
    let ow = params.out_extent(w, kw);
    let mut out = vec![0.0f32; n * c_out * oh * ow];
    let x = input.data();
    let wt = weight.data();
    let pad = params.padding as isize;
    let stride = params.stride;
    for ni in 0..n {
        for oc in 0..c_out {
            let b = bias.map_or(0.0, |b| b.data()[oc]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ic in 0..c_in {
                        for ky in 0..kh {
                            let iy = oy as isize * stride as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = ox as isize * stride as isize + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((ni * c_in + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * c_in + ic) * kh + ky) * kw + kx;
                                acc += x[xi] * wt[wi];
                            }
                        }
                    }
                    out[((ni * c_out + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c_out, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 on a single channel is identity.
        let x = Tensor::randn(&[1, 1, 4, 4], 5);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-7);
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 all-ones kernel over a 3x3 all-ones image, no padding → 9.
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 9.0);
    }

    #[test]
    fn same_padding_preserves_extent() {
        let x = Tensor::randn(&[2, 3, 8, 8], 6);
        let w = Tensor::randn(&[4, 3, 3, 3], 7);
        let y = conv2d(&x, &w, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn stride_2_halves_extent() {
        let x = Tensor::randn(&[1, 2, 8, 8], 8);
        let w = Tensor::randn(&[2, 2, 3, 3], 9);
        let y = conv2d(&x, &w, None, Conv2dParams { stride: 2, padding: 1 }).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn bias_is_added() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[3, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dParams::default()).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), 2.0);
        assert_eq!(y.at(&[0, 2, 0, 1]), 3.0);
    }

    #[test]
    fn channel_mismatch_errors() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dParams::default()).is_err());
    }

    #[test]
    fn zero_stride_errors() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let w = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dParams { stride: 0, padding: 0 }).is_err());
    }
}
