//! Elementwise binary and scalar operations.

use crate::{Result, Tensor, TensorError};

fn zip(op: &'static str, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let data = a.data().iter().zip(b.data().iter()).map(|(&x, &y)| f(x, y)).collect();
    Tensor::from_vec(data, a.shape().dims())
}

/// Elementwise sum of two same-shaped tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip("add", a, b, |x, y| x + y)
}

/// Elementwise product of two same-shaped tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip("mul", a, b, |x, y| x * y)
}

/// Multiplies every element by a scalar.
#[must_use]
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let data = a.data().iter().map(|&x| x * s).collect();
    Tensor::from_vec(data, a.shape().dims()).expect("same element count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_mul_work() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(add(&a, &b).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[3.0, 8.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(add(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
    }

    #[test]
    fn scale_multiplies() {
        let a = Tensor::ones(&[4]);
        assert_eq!(scale(&a, 2.5).data(), &[2.5; 4]);
    }

    #[test]
    fn add_is_commutative() {
        let a = Tensor::randn(&[8], 20);
        let b = Tensor::randn(&[8], 21);
        assert_eq!(add(&a, &b).unwrap(), add(&b, &a).unwrap());
    }
}
