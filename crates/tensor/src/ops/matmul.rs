//! Matrix multiplication.

use crate::{Result, Tensor, TensorError};

/// `[m, k] × [k, n] → [m, n]` matrix product.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-2 operands and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use mmg_tensor::{ops, Tensor};
/// # fn main() -> Result<(), mmg_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::InvalidShape {
            op: "matmul",
            reason: format!("expected rank-2 operands, got {} and {}", a.shape(), b.shape()),
        });
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Batched matrix product `[b, m, k] × [b, k, n] → [b, m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-3 operands and
/// [`TensorError::ShapeMismatch`] if batch or inner dims disagree.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 3 || b.shape().rank() != 3 {
        return Err(TensorError::InvalidShape {
            op: "bmm",
            reason: format!("expected rank-3 operands, got {} and {}", a.shape(), b.shape()),
        });
    }
    let (ba, m, k) = (a.shape().dims()[0], a.shape().dims()[1], a.shape().dims()[2]);
    let (bb, k2, n) = (b.shape().dims()[0], b.shape().dims()[1], b.shape().dims()[2]);
    if ba != bb || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; ba * m * n];
    let ad = a.data();
    let bd = b.data();
    for batch in 0..ba {
        let aoff = batch * m * k;
        let boff = batch * k * n;
        let ooff = batch * m * n;
        for i in 0..m {
            for p in 0..k {
                let av = ad[aoff + i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[boff + p * n..boff + (p + 1) * n];
                let orow = &mut out[ooff + i * n..ooff + (i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[ba, m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::randn(&[3, 3], 1);
        let i = Tensor::eye(3);
        let c = matmul(&a, &i).unwrap();
        assert!(a.max_abs_diff(&c).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let c = Tensor::zeros(&[2, 3, 4]);
        assert!(matmul(&a, &c).is_err());
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::randn(&[2, 3, 4], 2);
        let b = Tensor::randn(&[2, 4, 5], 3);
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 3, 5]);
        for batch in 0..2 {
            let a0 = Tensor::from_vec(a.data()[batch * 12..(batch + 1) * 12].to_vec(), &[3, 4]).unwrap();
            let b0 = Tensor::from_vec(b.data()[batch * 20..(batch + 1) * 20].to_vec(), &[4, 5]).unwrap();
            let c0 = matmul(&a0, &b0).unwrap();
            let got = &c.data()[batch * 15..(batch + 1) * 15];
            for (x, y) in c0.data().iter().zip(got.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bmm_batch_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let b = Tensor::zeros(&[3, 4, 5]);
        assert!(bmm(&a, &b).is_err());
    }
}
