//! Numeric operator implementations.
//!
//! These are straightforward reference implementations — clarity over speed.
//! They exist to validate the performance plane (shape inference, attention
//! lowering equivalence) and to power reduced-size end-to-end examples.

mod activation;
mod combine;
mod conv;
mod elementwise;
mod matmul;
mod norm;
mod reduce;
mod resample;

pub use activation::{gelu, relu, silu};
pub use combine::{chunk, concat};
pub use conv::{conv2d, Conv2dParams};
pub use elementwise::{add, mul, scale};
pub use matmul::{bmm, matmul};
pub use norm::{group_norm, layer_norm, rms_norm, softmax_last};
pub use reduce::{l2_norm, mean, mean_last, sum, variance};
pub use resample::{avg_pool2d, upsample_nearest2d};
