//! Normalization and softmax.

use crate::{Result, Tensor, TensorError};

/// Softmax over the last axis.
///
/// Uses the numerically-stable max-subtraction formulation — the same
/// invariant the flash-attention online softmax must preserve.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for rank-0 tensors.
pub fn softmax_last(x: &Tensor) -> Result<Tensor> {
    if x.shape().rank() == 0 {
        return Err(TensorError::InvalidShape { op: "softmax", reason: "rank-0 input".into() });
    }
    let cols = *x.shape().dims().last().expect("rank >= 1");
    if cols == 0 {
        return Err(TensorError::InvalidShape { op: "softmax", reason: "zero-length last axis".into() });
    }
    let rows = x.numel() / cols;
    let mut out = vec![0.0f32; x.numel()];
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
            let e = (v - m).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[r * cols..(r + 1) * cols] {
            *o /= denom;
        }
    }
    Tensor::from_vec(out, x.shape().dims())
}

/// GroupNorm over `[n, c, h, w]` with `num_groups` channel groups.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-4 input and
/// [`TensorError::InvalidParameter`] if `c % num_groups != 0` or
/// `num_groups == 0`.
pub fn group_norm(x: &Tensor, num_groups: usize, eps: f32) -> Result<Tensor> {
    if x.shape().rank() != 4 {
        return Err(TensorError::InvalidShape {
            op: "group_norm",
            reason: format!("expected rank-4 input, got {}", x.shape()),
        });
    }
    let [n, c, h, w] =
        [x.shape().dims()[0], x.shape().dims()[1], x.shape().dims()[2], x.shape().dims()[3]];
    if num_groups == 0 || c % num_groups != 0 {
        return Err(TensorError::InvalidParameter {
            op: "group_norm",
            reason: format!("channels {c} not divisible by groups {num_groups}"),
        });
    }
    let cg = c / num_groups;
    let group_elems = cg * h * w;
    let mut out = vec![0.0f32; x.numel()];
    for ni in 0..n {
        for g in 0..num_groups {
            let start = (ni * c + g * cg) * h * w;
            let slice = &x.data()[start..start + group_elems];
            let mean: f32 = slice.iter().sum::<f32>() / group_elems as f32;
            let var: f32 =
                slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / group_elems as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (o, &v) in out[start..start + group_elems].iter_mut().zip(slice.iter()) {
                *o = (v - mean) * inv;
            }
        }
    }
    Tensor::from_vec(out, x.shape().dims())
}

/// LayerNorm over the last axis.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for rank-0 input.
pub fn layer_norm(x: &Tensor, eps: f32) -> Result<Tensor> {
    if x.shape().rank() == 0 {
        return Err(TensorError::InvalidShape { op: "layer_norm", reason: "rank-0 input".into() });
    }
    let cols = *x.shape().dims().last().expect("rank >= 1");
    let rows = x.numel() / cols;
    let mut out = vec![0.0f32; x.numel()];
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let mean: f32 = row.iter().sum::<f32>() / cols as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (o, &v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
            *o = (v - mean) * inv;
        }
    }
    Tensor::from_vec(out, x.shape().dims())
}

/// RMSNorm over the last axis (used by LLaMA-family models).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for rank-0 input.
pub fn rms_norm(x: &Tensor, eps: f32) -> Result<Tensor> {
    if x.shape().rank() == 0 {
        return Err(TensorError::InvalidShape { op: "rms_norm", reason: "rank-0 input".into() });
    }
    let cols = *x.shape().dims().last().expect("rank >= 1");
    let rows = x.numel() / cols;
    let mut out = vec![0.0f32; x.numel()];
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (o, &v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
            *o = v * inv;
        }
    }
    Tensor::from_vec(out, x.shape().dims())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::randn(&[4, 7], 10);
        let y = softmax_last(&x).unwrap();
        for r in 0..4 {
            let s: f32 = y.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let shifted = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]).unwrap();
        let a = softmax_last(&x).unwrap();
        let b = softmax_last(&shifted).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0], &[1, 2]).unwrap();
        let y = softmax_last(&x).unwrap();
        assert!(y.all_finite());
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn group_norm_zero_mean_unit_var() {
        let x = Tensor::randn(&[2, 8, 4, 4], 11);
        let y = group_norm(&x, 4, 1e-5).unwrap();
        // Each group of 2 channels x 16 pixels should be ~N(0,1).
        let group_elems = 2 * 16;
        let slice = &y.data()[0..group_elems];
        let mean: f32 = slice.iter().sum::<f32>() / group_elems as f32;
        let var: f32 = slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / group_elems as f32;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn group_norm_validates_groups() {
        let x = Tensor::zeros(&[1, 6, 2, 2]);
        assert!(group_norm(&x, 4, 1e-5).is_err());
        assert!(group_norm(&x, 0, 1e-5).is_err());
        assert!(group_norm(&x, 3, 1e-5).is_ok());
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let x = Tensor::randn(&[3, 64], 12);
        let y = layer_norm(&x, 1e-5).unwrap();
        for r in 0..3 {
            let row = &y.data()[r * 64..(r + 1) * 64];
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rms_norm_unit_rms() {
        let x = Tensor::randn(&[2, 32], 13);
        let y = rms_norm(&x, 1e-6).unwrap();
        for r in 0..2 {
            let row = &y.data()[r * 32..(r + 1) * 32];
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3);
        }
    }
}
