//! Reductions.

use crate::{Result, Tensor, TensorError};

/// Sum of all elements.
#[must_use]
pub fn sum(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// Mean of all elements (0 for empty tensors).
#[must_use]
pub fn mean(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        0.0
    } else {
        sum(t) / t.numel() as f32
    }
}

/// Population variance of all elements (0 for empty tensors).
#[must_use]
pub fn variance(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        return 0.0;
    }
    let m = mean(t);
    t.data().iter().map(|v| (v - m) * (v - m)).sum::<f32>() / t.numel() as f32
}

/// Mean over the last axis: `[.., n] → [..]`-shaped tensor (kept rank-1
/// minimum).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for rank-0 or zero-length last
/// axis.
pub fn mean_last(t: &Tensor) -> Result<Tensor> {
    if t.shape().rank() == 0 {
        return Err(TensorError::InvalidShape { op: "mean_last", reason: "rank-0 input".into() });
    }
    let cols = *t.shape().dims().last().expect("rank >= 1");
    if cols == 0 {
        return Err(TensorError::InvalidShape {
            op: "mean_last",
            reason: "zero-length last axis".into(),
        });
    }
    let rows = t.numel() / cols;
    let data: Vec<f32> = (0..rows)
        .map(|r| t.data()[r * cols..(r + 1) * cols].iter().sum::<f32>() / cols as f32)
        .collect();
    let out_dims: Vec<usize> = if t.shape().rank() == 1 {
        vec![1]
    } else {
        t.shape().dims()[..t.shape().rank() - 1].to_vec()
    };
    Tensor::from_vec(data, &out_dims)
}

/// L2 norm of all elements.
#[must_use]
pub fn l2_norm(t: &Tensor) -> f32 {
    t.data().iter().map(|v| v * v).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(sum(&t), 10.0);
        assert_eq!(mean(&t), 2.5);
        assert!((variance(&t) - 1.25).abs() < 1e-6);
        assert!((l2_norm(&t) - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mean_last_reduces_rows() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 10.0, 20.0], &[2, 2]).unwrap();
        let m = mean_last(&t).unwrap();
        assert_eq!(m.shape().dims(), &[2]);
        assert_eq!(m.data(), &[2.0, 15.0]);
    }

    #[test]
    fn mean_last_rank1_yields_singleton() {
        let t = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        let m = mean_last(&t).unwrap();
        assert_eq!(m.shape().dims(), &[1]);
        assert_eq!(m.data(), &[3.0]);
    }

    #[test]
    fn randn_statistics() {
        let t = Tensor::randn(&[10_000], 9);
        assert!(mean(&t).abs() < 0.05);
        assert!((variance(&t) - 1.0).abs() < 0.1);
    }

    #[test]
    fn empty_tensor_is_safe() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(sum(&t), 0.0);
        assert_eq!(mean(&t), 0.0);
        assert_eq!(variance(&t), 0.0);
    }
}
