//! Spatial resampling — the UNet's down/upsampling blocks.

use crate::{Result, Tensor, TensorError};

/// Nearest-neighbour upsampling of `[n, c, h, w]` by an integer factor.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-4 input and
/// [`TensorError::InvalidParameter`] for factor 0.
pub fn upsample_nearest2d(x: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::InvalidParameter { op: "upsample", reason: "factor must be > 0".into() });
    }
    if x.shape().rank() != 4 {
        return Err(TensorError::InvalidShape {
            op: "upsample",
            reason: format!("expected rank-4 input, got {}", x.shape()),
        });
    }
    let [n, c, h, w] =
        [x.shape().dims()[0], x.shape().dims()[1], x.shape().dims()[2], x.shape().dims()[3]];
    let (oh, ow) = (h * factor, w * factor);
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let iy = oy / factor;
                    let ix = ox / factor;
                    out[((ni * c + ci) * oh + oy) * ow + ox] =
                        x.data()[((ni * c + ci) * h + iy) * w + ix];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Average pooling of `[n, c, h, w]` by an integer factor.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-4 input or spatial
/// extents not divisible by the factor, and
/// [`TensorError::InvalidParameter`] for factor 0.
pub fn avg_pool2d(x: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::InvalidParameter { op: "avg_pool", reason: "factor must be > 0".into() });
    }
    if x.shape().rank() != 4 {
        return Err(TensorError::InvalidShape {
            op: "avg_pool",
            reason: format!("expected rank-4 input, got {}", x.shape()),
        });
    }
    let [n, c, h, w] =
        [x.shape().dims()[0], x.shape().dims()[1], x.shape().dims()[2], x.shape().dims()[3]];
    if h % factor != 0 || w % factor != 0 {
        return Err(TensorError::InvalidShape {
            op: "avg_pool",
            reason: format!("extent ({h}, {w}) not divisible by factor {factor}"),
        });
    }
    let (oh, ow) = (h / factor, w / factor);
    let inv = 1.0 / (factor * factor) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..factor {
                        for dx in 0..factor {
                            acc += x.data()
                                [((ni * c + ci) * h + oy * factor + dy) * w + ox * factor + dx];
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsample_replicates_pixels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = upsample_nearest2d(&x, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 0, 2]), 2.0);
        assert_eq!(y.at(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn avg_pool_averages() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = avg_pool2d(&x, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 2.5);
    }

    #[test]
    fn pool_then_upsample_roundtrip_on_constant() {
        let x = Tensor::full(&[1, 2, 4, 4], 3.0);
        let y = upsample_nearest2d(&avg_pool2d(&x, 2).unwrap(), 2).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-7);
    }

    #[test]
    fn indivisible_extent_rejected() {
        let x = Tensor::zeros(&[1, 1, 3, 4]);
        assert!(avg_pool2d(&x, 2).is_err());
    }

    #[test]
    fn factor_one_is_identity() {
        let x = Tensor::randn(&[1, 2, 3, 3], 30);
        assert_eq!(upsample_nearest2d(&x, 1).unwrap(), x);
        assert_eq!(avg_pool2d(&x, 1).unwrap(), x);
    }

    #[test]
    fn factor_zero_rejected() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(upsample_nearest2d(&x, 0).is_err());
        assert!(avg_pool2d(&x, 0).is_err());
    }
}
