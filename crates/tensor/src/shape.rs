//! Tensor shapes and stride computation.

use std::fmt;

use crate::TensorError;

/// The extents of a tensor along each axis.
///
/// Shapes are always row-major ("C order"): the last axis is contiguous.
///
/// # Example
///
/// ```
/// use mmg_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from axis extents.
    #[must_use]
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// Creates a scalar (rank-0) shape.
    #[must_use]
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Axis extents.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    #[must_use]
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange { axis, rank: self.dims.len() })
    }

    /// Row-major strides, in elements.
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `index` has the right rank and is in bounds.
    #[must_use]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let strides = self.strides();
        index
            .iter()
            .zip(strides.iter())
            .zip(self.dims.iter())
            .map(|((&i, &s), &d)| {
                debug_assert!(i < d, "index {i} out of bounds for dim {d}");
                i * s
            })
            .sum()
    }

    /// Whether two shapes are identical.
    #[must_use]
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }

    /// The shape with `axis` removed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn remove_axis(&self, axis: usize) -> Result<Shape, TensorError> {
        if axis >= self.dims.len() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.dims.len() });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape { dims })
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn dim_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(matches!(s.dim(2), Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })));
    }

    #[test]
    fn remove_axis_works() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.remove_axis(1).unwrap().dims(), &[2, 4]);
        assert!(s.remove_axis(3).is_err());
    }

    #[test]
    fn display_renders_brackets() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn zero_extent_gives_zero_numel() {
        assert_eq!(Shape::new(&[4, 0, 2]).numel(), 0);
    }
}
