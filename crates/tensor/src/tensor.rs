//! Dense CPU tensors with `f32` storage.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Result, Shape, TensorError};

/// A dense, row-major, `f32` tensor.
///
/// This is deliberately minimal: enough to run model forward passes at
/// reduced sizes in tests and examples. Layout is always contiguous
/// row-major; views are materialized rather than strided.
///
/// # Example
///
/// ```
/// use mmg_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert!(t.data().iter().all(|&x| x == 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if `data.len()` differs
    /// from the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::DataLengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// All-zero tensor.
    #[must_use]
    pub fn zeros(dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// All-one tensor.
    #[must_use]
    pub fn ones(dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        let data = vec![1.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Tensor filled with `value`.
    #[must_use]
    pub fn full(dims: &[usize], value: f32) -> Tensor {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Square identity matrix of side `n`.
    #[must_use]
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Standard-normal tensor from a deterministic seed.
    ///
    /// All randomness in the suite is seeded for reproducibility.
    #[must_use]
    pub fn randn(dims: &[usize], seed: u64) -> Tensor {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        // Box-Muller via rand's StandardNormal-free path: use two uniforms.
        let uniform = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = uniform.sample(&mut rng);
            let u2: f32 = uniform.sample(&mut rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// `[0, 1, …, n-1]` as a rank-1 tensor.
    #[must_use]
    pub fn arange(n: usize) -> Tensor {
        let data = (0..n).map(|i| i as f32).collect();
        Tensor { shape: Shape::new(&[n]), data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Borrow the underlying row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[must_use]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    #[must_use]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Total element count.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Element at a multi-dimensional index.
    #[must_use]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Reinterprets the data with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::DataLengthMismatch {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Materialized axis permutation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if `perm` is not a
    /// permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let rank = self.shape.rank();
        let mut seen = vec![false; rank];
        if perm.len() != rank || perm.iter().any(|&p| p >= rank || std::mem::replace(&mut seen[p], true)) {
            return Err(TensorError::InvalidParameter {
                op: "permute",
                reason: format!("{perm:?} is not a permutation of 0..{rank}"),
            });
        }
        let src_dims = self.shape.dims();
        let dst_dims: Vec<usize> = perm.iter().map(|&p| src_dims[p]).collect();
        let dst_shape = Shape::new(&dst_dims);
        let src_strides = self.shape.strides();
        let mut out = vec![0.0f32; self.numel()];
        let mut index = vec![0usize; rank];
        for (flat, slot) in out.iter_mut().enumerate() {
            // Decompose flat index of destination into multi-index.
            let mut rem = flat;
            let dst_strides = dst_shape.strides();
            for a in 0..rank {
                index[a] = rem / dst_strides[a];
                rem %= dst_strides[a];
            }
            // Map back to source offset.
            let mut src_off = 0;
            for a in 0..rank {
                src_off += index[a] * src_strides[perm[a]];
            }
            *slot = self.data[src_off];
        }
        Ok(Tensor { shape: dst_shape, data: out })
    }

    /// 2-D transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::InvalidShape {
                op: "transpose",
                reason: format!("expected rank 2, got {}", self.shape.rank()),
            });
        }
        self.permute(&[1, 0])
    }

    /// Maximum absolute difference to another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Whether all elements are finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::DataLengthMismatch { expected: 6, actual: 5 })
        ));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 1]), 1.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let a = Tensor::randn(&[1000], 42);
        let b = Tensor::randn(&[1000], 42);
        assert_eq!(a, b);
        let mean: f32 = a.data().iter().sum::<f32>() / 1000.0;
        let var: f32 = a.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn randn_different_seeds_differ() {
        assert_ne!(Tensor::randn(&[16], 1), Tensor::randn(&[16], 2));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]).unwrap();
        assert_eq!(r.at(&[1, 2]), 5.0);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn permute_transposes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let p = t.permute(&[1, 0]).unwrap();
        assert_eq!(p.shape().dims(), &[3, 2]);
        assert_eq!(p.at(&[0, 1]), 4.0);
        assert_eq!(p.at(&[2, 0]), 3.0);
    }

    #[test]
    fn permute_rejects_non_permutation() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
    }

    #[test]
    fn permute_3d_roundtrip() {
        let t = Tensor::randn(&[2, 3, 4], 7);
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape().dims(), &[4, 2, 3]);
        let back = p.permute(&[1, 2, 0]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Tensor::zeros(&[4]);
        let mut b = Tensor::zeros(&[4]);
        b.set(&[2], 0.5);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        let c = Tensor::zeros(&[5]);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn set_and_at_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 9.0);
        assert_eq!(t.at(&[1, 0, 1]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }
}
