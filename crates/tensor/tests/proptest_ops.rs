//! Property-based tests for the numeric operators.

use mmg_tensor::{ops, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[m, k], seed + 1);
        let c = Tensor::randn(&[k, n], seed + 2);
        let lhs = ops::matmul(&ops::add(&a, &b).unwrap(), &c).unwrap();
        let rhs = ops::add(&ops::matmul(&a, &c).unwrap(), &ops::matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
    }

    /// Matmul with the identity is the identity map.
    #[test]
    fn matmul_identity(m in 1usize..8, n in 1usize..8, seed in 0u64..500) {
        let a = Tensor::randn(&[m, n], seed);
        let i = Tensor::eye(n);
        let out = ops::matmul(&a, &i).unwrap();
        prop_assert!(a.max_abs_diff(&out).unwrap() < 1e-6);
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_is_linear(c in 1usize..3, hw in 3usize..7, seed in 0u64..500) {
        let x = Tensor::randn(&[1, c, hw, hw], seed);
        let w = Tensor::randn(&[2, c, 3, 3], seed + 1);
        let params = ops::Conv2dParams::same(3);
        let y1 = ops::conv2d(&ops::scale(&x, 2.0), &w, None, params).unwrap();
        let y2 = ops::scale(&ops::conv2d(&x, &w, None, params).unwrap(), 2.0);
        prop_assert!(y1.max_abs_diff(&y2).unwrap() < 1e-4);
    }

    /// Batched matmul equals per-slice matmul.
    #[test]
    fn bmm_equals_sliced_matmul(b in 1usize..4, m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let x = Tensor::randn(&[b, m, k], seed);
        let y = Tensor::randn(&[b, k, n], seed + 1);
        let z = ops::bmm(&x, &y).unwrap();
        for i in 0..b {
            let xs = Tensor::from_vec(x.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k]).unwrap();
            let ys = Tensor::from_vec(y.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n]).unwrap();
            let zs = ops::matmul(&xs, &ys).unwrap();
            for (j, v) in zs.data().iter().enumerate() {
                prop_assert!((v - z.data()[i * m * n + j]).abs() < 1e-4);
            }
        }
    }

    /// LayerNorm output is invariant to input shift and scale (up to eps).
    #[test]
    fn layer_norm_shift_scale_invariant(cols in 4usize..32, shift in -5.0f32..5.0, scale in 0.5f32..4.0, seed in 0u64..500) {
        let x = Tensor::randn(&[2, cols], seed);
        let shifted_data: Vec<f32> = x.data().iter().map(|v| v * scale + shift).collect();
        let shifted = Tensor::from_vec(shifted_data, &[2, cols]).unwrap();
        let a = ops::layer_norm(&x, 1e-6).unwrap();
        let b = ops::layer_norm(&shifted, 1e-6).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-2);
    }

    /// Softmax is monotone: larger logits never get smaller probability.
    #[test]
    fn softmax_preserves_order(cols in 2usize..16, seed in 0u64..500) {
        let x = Tensor::randn(&[1, cols], seed);
        let y = ops::softmax_last(&x).unwrap();
        for i in 0..cols {
            for j in 0..cols {
                if x.data()[i] > x.data()[j] {
                    prop_assert!(y.data()[i] >= y.data()[j] - 1e-7);
                }
            }
        }
    }

    /// RMSNorm output always has unit RMS.
    #[test]
    fn rms_norm_unit_rms(cols in 2usize..64, seed in 0u64..500) {
        let x = ops::scale(&Tensor::randn(&[1, cols], seed), 7.0);
        let y = ops::rms_norm(&x, 1e-8).unwrap();
        let ms: f32 = y.data().iter().map(|v| v * v).sum::<f32>() / cols as f32;
        prop_assert!((ms - 1.0).abs() < 1e-2, "ms = {}", ms);
    }

    /// avg_pool never exceeds the input maximum (convexity).
    #[test]
    fn avg_pool_bounded_by_extrema(c in 1usize..3, hw in 1usize..4, factor in 1usize..3, seed in 0u64..500) {
        let x = Tensor::randn(&[1, c, hw * factor, hw * factor], seed);
        let y = ops::avg_pool2d(&x, factor).unwrap();
        let max_in = x.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let min_in = x.data().iter().copied().fold(f32::INFINITY, f32::min);
        for v in y.data() {
            prop_assert!(*v <= max_in + 1e-6 && *v >= min_in - 1e-6);
        }
    }
}
