//! Deployment study: what it takes to *serve* multi-modal generation —
//! the paper's closing concern ("efficient and deployable systems").
//!
//! Combines the extension substrates: the DiT architecture comparison,
//! tensor-parallel decode, pod co-scheduling, and the request-serving
//! queue simulation.
//!
//! ```text
//! cargo run --release --example deployment_study
//! ```

use mmgen::analytics::parallel::tp_sweep;
use mmgen::analytics::scheduling::{pod_estimate, simulated_pod_speedup};
use mmgen::analytics::serving::{simulate_mdl, summarize};
use mmgen::attn::AttnImpl;
use mmgen::gpu::DeviceSpec;
use mmgen::graph::OpCategory;
use mmgen::models::suite::dit::{pipeline as dit_pipeline, DitConfig};
use mmgen::models::suite::parti::PartiConfig;
use mmgen::models::suite::stable_diffusion::{pipeline as sd_pipeline, StableDiffusionConfig};
use mmgen::profiler::report::fmt_seconds;
use mmgen::profiler::Profiler;

fn main() {
    let device = DeviceSpec::a100_80gb();
    let profiler = Profiler::new(device.clone(), AttnImpl::Flash);

    // 1. Architecture choice: UNet diffusion vs diffusion transformer.
    let sd = sd_pipeline(&StableDiffusionConfig::default());
    let dit = dit_pipeline(&DitConfig::default());
    println!("Architecture comparison @512px, 50 steps:");
    for p in [&sd, &dit] {
        let prof = p.profile(&profiler);
        let b = prof.breakdown();
        let top = b.rows().first().expect("nonempty");
        println!(
            "  {:<16} {:>10}  {:>6.2}B params  top operator: {} ({:.0}%)  conv share {:.0}%",
            p.name,
            fmt_seconds(prof.total_time_s()),
            p.param_count() as f64 / 1e9,
            top.0,
            100.0 * top.1 / b.total_s(),
            100.0 * b.fraction(OpCategory::Conv),
        );
    }

    // 2. Pod co-scheduling headroom for throughput serving.
    let sd_prof = sd.profile(&profiler);
    let hot = sd_prof.stage("unet_step").expect("unet stage");
    let bound = pod_estimate(&hot.timeline).speedup();
    let sim2 = simulated_pod_speedup(&hot.timeline, 2);
    println!("\nPod co-scheduling (SD UNet): bound {bound:.2}x, simulated k=2 {sim2:.2}x");

    // 3. Latency under load, with and without pods.
    let service = sd_prof.total_time_s();
    println!("\nServing one A100 with SD requests (service {:.0} ms):", service * 1e3);
    for rate in [1.0f64, 2.0, 2.5] {
        let plain = summarize(&simulate_mdl(rate, service, 5000, 42), rate * service);
        let podded = summarize(
            &simulate_mdl(rate, service / sim2, 5000, 42),
            rate * service / sim2,
        );
        println!(
            "  {rate:.1} req/s: p99 {:>9} plain | {:>9} with pods",
            fmt_seconds(plain.p99_s),
            fmt_seconds(podded.p99_s)
        );
    }

    // 4. Tensor parallelism for the 20B autoregressive model.
    println!("\nTensor-parallel Parti decode step (kv=512):");
    let parti = PartiConfig::default();
    for est in tp_sweep(&parti.decoder, 512, 1, &[1, 2, 4, 8], &device) {
        println!(
            "  {} GPUs: {:>8.2} ms/token ({:.0}% comms)",
            est.k,
            est.total_s * 1e3,
            est.comms_fraction() * 100.0
        );
    }
}
