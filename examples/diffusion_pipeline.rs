//! A reduced-size latent-diffusion denoising loop executed with *real
//! numbers* on the numeric plane — demonstrating that the same operator
//! graphs drive both actual computation and performance simulation, and
//! that the flash-attention lowering is numerically exact end-to-end.
//!
//! ```text
//! cargo run --release --example diffusion_pipeline
//! ```

use mmgen::attn::AttnImpl;
use mmgen::graph::{numeric, ActivationKind, AttnKind, Graph, Op};
use mmgen::gpu::DeviceSpec;
use mmgen::profiler::Profiler;
use mmgen::tensor::{ops, Tensor};

/// A miniature UNet-ish denoiser: conv in, one attention block at 8x8,
/// conv out. Small enough to run in milliseconds with real f32 math.
fn tiny_denoiser() -> Graph {
    let (c, r) = (16usize, 8usize);
    let mut g = Graph::new();
    g.push("conv_in", Op::Conv2d { batch: 1, c_in: 4, c_out: c, h: r, w: r, kernel: 3, stride: 1 });
    g.push("norm", Op::GroupNorm { batch: 1, channels: c, h: r, w: r, groups: 4 });
    g.push("act", Op::Activation { elems: c * r * r, kind: ActivationKind::Silu });
    g.push(
        "attn",
        Op::Attention {
            // 2 heads over the 16 channels at the 8x8 grid: seq = 64 pixels.
            shape: mmgen::attn::AttentionShape::self_attn(1, 2, r * r, c / 2),
            kind: AttnKind::SpatialSelf,
        },
    );
    g.push("proj", Op::Linear { tokens: r * r, in_features: c, out_features: 4 });
    g
}

fn main() {
    let graph = tiny_denoiser();
    let steps = 10;

    // Numeric plane: a real DDIM sampling loop with real math, under both
    // attention implementations.
    let schedule = mmgen::models::diffusion::NoiseSchedule::scaled_linear(1000);
    let timesteps = schedule.ddim_timesteps(steps).expect("valid step count");
    let mut outputs = Vec::new();
    for attn in [AttnImpl::Baseline, AttnImpl::Flash] {
        let mut latent = Tensor::randn(&[1, 4, 8, 8], 7);
        for (i, &t) in timesteps.iter().enumerate() {
            // The toy denoiser plays the epsilon-prediction network; its
            // output comes back as [64, 4] and is reshaped to the latent.
            let eps = numeric::execute_chain(&graph, latent.clone(), attn)
                .expect("graph is numerically executable");
            let eps = eps.reshape(&[1, 64, 4]).unwrap().permute(&[0, 2, 1]).unwrap();
            let eps = ops::scale(&eps.reshape(&[1, 4, 8, 8]).unwrap(), 0.05);
            let t_prev = timesteps.get(i + 1).copied();
            latent = schedule.ddim_step(&latent, &eps, t, t_prev).expect("ddim update");
            assert!(latent.all_finite(), "denoising stays finite");
        }
        println!("{attn}: final latent norm {:.4}", l2(&latent));
        outputs.push(latent);
    }
    let diff = outputs[0].max_abs_diff(&outputs[1]).unwrap();
    println!("max |baseline - flash| after {steps} denoising steps: {diff:.2e}");
    assert!(diff < 1e-3, "flash attention must be numerically exact");

    // Performance plane: the same graph, timed on a simulated A100.
    let profiler = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash);
    let timeline = profiler.profile(&graph);
    println!(
        "\nsimulated A100 time for one step of this toy denoiser: {:.1} µs ({} kernels)",
        timeline.total_time_s() * 1e6,
        timeline.events().iter().map(|e| e.kernels.len()).sum::<usize>()
    );
}

fn l2(t: &Tensor) -> f32 {
    t.data().iter().map(|x| x * x).sum::<f32>().sqrt()
}
