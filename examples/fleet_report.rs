//! Fleet- and landscape-level report (Figs. 1, 4, 5) with JSON export —
//! the "datacenter operator" view of the multi-modal workload shift.
//!
//! ```text
//! cargo run --release --example fleet_report            # tables
//! cargo run --release --example fleet_report -- --json  # machine-readable
//! ```

use mmgen::analytics::fleet::{generate_fleet, summarize, FleetConfig, JobFamily};
use mmgen::core::experiments::{fig1, fig4, fig5};
use mmgen::gpu::DeviceSpec;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let spec = DeviceSpec::a100_80gb();

    let f1 = fig1::run(42);
    let f4 = fig4::run();
    let f5 = fig5::run(&spec);

    if json {
        let bundle = serde_json::json!({
            "fig1": f1,
            "fig4": f4,
            "fig5": f5,
        });
        println!("{}", serde_json::to_string_pretty(&bundle).expect("serializable"));
        return;
    }

    println!("{}", fig1::render(&f1));

    // A deeper slice of the synthetic fleet than Fig. 1 prints.
    let jobs = generate_fleet(&FleetConfig::default(), 42);
    let s = summarize(&jobs);
    let count = |f: JobFamily| jobs.iter().filter(|j| j.family == f).count();
    println!(
        "fleet detail: {} LLM jobs ({:.2e} GPUs/param), {} TTI/TTV jobs ({:.2e} GPUs/param)\n",
        count(JobFamily::Llm),
        s.llm_gpus_per_param,
        count(JobFamily::TtiTtv),
        s.tti_gpus_per_param,
    );

    println!("{}", fig4::render(&f4));
    println!("{}", fig5::render(&f5));
}
