//! Quickstart: profile Stable Diffusion on a simulated A100 and see where
//! the time goes, with and without Flash Attention.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mmgen::attn::AttnImpl;
use mmgen::gpu::DeviceSpec;
use mmgen::models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmgen::profiler::report::{fmt_pct, fmt_seconds};
use mmgen::profiler::Profiler;

fn main() {
    // 1. Build the model: CLIP text encoder -> 50-step UNet -> VAE decoder.
    let config = StableDiffusionConfig::default();
    let model = pipeline(&config);
    println!(
        "Stable Diffusion @ {}px: {} stages, {:.2}B params, {:.1} TFLOPs/image",
        config.image_size,
        model.stages.len(),
        model.param_count() as f64 / 1e9,
        model.total_flops() as f64 / 1e12,
    );

    // 2. Profile it on a simulated A100 under both attention kernels.
    let device = DeviceSpec::a100_80gb();
    for attn in [AttnImpl::Baseline, AttnImpl::Flash] {
        let profiler = Profiler::new(device.clone(), attn);
        let profile = model.profile(&profiler);
        let breakdown = profile.breakdown();
        println!("\n--- {attn} attention: {} end-to-end", fmt_seconds(profile.total_time_s()));
        for &(category, seconds) in breakdown.rows() {
            println!(
                "  {category:<12} {:>10}  {:>6}",
                fmt_seconds(seconds),
                fmt_pct(seconds / breakdown.total_s())
            );
        }
    }

    // 3. The headline: who is the bottleneck after Flash Attention?
    let flash = model.profile(&Profiler::new(device.clone(), AttnImpl::Flash));
    let base = model.profile(&Profiler::new(device, AttnImpl::Baseline));
    println!(
        "\nFlash Attention end-to-end speedup: {:.2}x (paper reports 1.67x)",
        base.total_time_s() / flash.total_time_s()
    );
    let b = flash.breakdown();
    let top = b.rows().first().expect("nonempty breakdown");
    println!("largest post-flash operator block: {} ({})", top.0, fmt_pct(top.1 / b.total_s()));
}
