//! Image-size and device scaling study (Sections V-B and beyond).
//!
//! Sweeps Stable Diffusion output resolution, reporting how attention and
//! convolution time scale (Fig. 9), how the analytical O(L⁴) memory law
//! tracks the traced graphs (Section V), and how the Flash Attention
//! speedup shifts across GPU generations.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use mmgen::analytics::seqlen_model::{scaling_exponent, DiffusionSeqModel};
use mmgen::attn::AttnImpl;
use mmgen::core::experiments::{fig9, table2};
use mmgen::gpu::DeviceSpec;
use mmgen::models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmgen::profiler::report::fmt_seconds;
use mmgen::profiler::Profiler;

fn main() {
    let a100 = DeviceSpec::a100_80gb();

    // 1. Fig. 9 sweep.
    println!("{}", fig9::render(&fig9::run(&a100, &[64, 128, 256, 512])));

    // 2. Section V memory law vs a wider sweep.
    println!("Analytical similarity-matrix memory (Section V):");
    let mut prev: Option<(usize, u64)> = None;
    for size in [128usize, 256, 512, 1024] {
        let m = DiffusionSeqModel::stable_diffusion(size);
        let bytes = m.cumulative_similarity_bytes();
        let exp = prev.map(|(ps, pb)| {
            scaling_exponent(ps as f64, pb as f64, size as f64, bytes as f64)
        });
        match exp {
            Some(k) => println!(
                "  {size:>5}px: {:>10.1} MiB   local exponent {:.2}",
                bytes as f64 / (1 << 20) as f64,
                k
            ),
            None => println!("  {size:>5}px: {:>10.1} MiB", bytes as f64 / (1 << 20) as f64),
        }
        prev = Some((size, bytes));
    }

    // 3. End-to-end latency vs image size under flash attention.
    println!("\nEnd-to-end simulated latency (flash attention):");
    let profiler = Profiler::new(a100.clone(), AttnImpl::Flash);
    for size in [256usize, 512, 768, 1024] {
        let p = pipeline(&StableDiffusionConfig { image_size: size, ..Default::default() });
        let t = p.profile(&profiler).total_time_s();
        println!("  {size:>5}px: {}", fmt_seconds(t));
    }

    // 4. Device-generation ablation of Table II.
    println!("\nFlash Attention end-to-end speedup across GPU generations:");
    for spec in [DeviceSpec::v100_32gb(), DeviceSpec::a100_80gb(), DeviceSpec::h100_80gb()] {
        let r = table2::run(&spec);
        let sd = r.row("StableDiffusion").expect("sd row").e2e_speedup;
        let llama = r.row("LLaMA2").expect("llama row").e2e_speedup;
        println!("  {:<16} SD {:.2}x   LLaMA2 {:.2}x", spec.name, sd, llama);
    }
}
