//! Text-to-video systems study: why temporal attention is the emerging
//! bottleneck (Sections II-B and VI of the paper).
//!
//! Covers three angles:
//! 1. end-to-end Make-A-Video profile split into spatial vs temporal time,
//! 2. the frame-count FLOP crossover (Fig. 13),
//! 3. the cache-locality collapse of the temporal layout (Fig. 12),
//!    plus a numeric demonstration of the Fig. 10 rearrangements.
//!
//! ```text
//! cargo run --release --example video_generation
//! ```

use mmgen::analytics::temporal::{crossover_frames, frame_sweep};
use mmgen::attn::video::{to_spatial_layout, to_temporal_layout, VideoAttentionKind};
use mmgen::attn::AttnImpl;
use mmgen::gpu::DeviceSpec;
use mmgen::graph::AttnKind;
use mmgen::kernels::access::{AttentionKernel, VideoAttentionAccess};
use mmgen::models::suite::make_a_video::{pipeline, MakeAVideoConfig};
use mmgen::profiler::report::fmt_seconds;
use mmgen::profiler::Profiler;
use mmgen::tensor::Tensor;

fn main() {
    let device = DeviceSpec::a100_80gb();

    // 1. Make-A-Video end to end.
    let cfg = MakeAVideoConfig::default();
    let profile = pipeline(&cfg).profile(&Profiler::new(device.clone(), AttnImpl::Flash));
    let spatial = profile.attention_time_by_kind(AttnKind::SpatialSelf);
    let temporal = profile.attention_time_by_kind(AttnKind::Temporal);
    println!("Make-A-Video, {} frames @ {}px:", cfg.frames, cfg.base_res);
    println!("  total            {}", fmt_seconds(profile.total_time_s()));
    println!("  spatial attention  {}", fmt_seconds(spatial));
    println!(
        "  temporal attention {}  ({:.1}x spatial, with {:.1}x fewer FLOPs)",
        fmt_seconds(temporal),
        temporal / spatial,
        profile.attention_flops_by_kind(AttnKind::SpatialSelf) as f64
            / profile.attention_flops_by_kind(AttnKind::Temporal) as f64
    );
    println!(
        "  temporal share of attention time: {:.0}% (paper: >60%)",
        100.0 * temporal / (temporal + spatial)
    );

    // 2. Frame scaling: where does temporal overtake spatial?
    println!("\nFLOPs vs frames at a 16x16 grid (Fig. 13):");
    for p in frame_sweep(&[8, 64, 256, 512], 16, 320, 8) {
        println!(
            "  {:>4} frames: spatial {:>8.2} G, temporal {:>8.2} G",
            p.frames,
            p.spatial_flops as f64 / 1e9,
            p.temporal_flops as f64 / 1e9
        );
    }
    println!(
        "  crossover: {:?} frames at 16x16; {:?} at 32x32 (higher res postpones it)",
        crossover_frames(16, 320, 8, 100_000),
        crossover_frames(32, 320, 8, 100_000)
    );

    // 3. Cache behaviour of the two layouts.
    println!("\nSimulated cache hit rates (Fig. 12):");
    let access = VideoAttentionAccess::make_a_video_base();
    for (kernel, name) in
        [(AttentionKernel::Gemm, "gemm"), (AttentionKernel::Softmax, "softmax")]
    {
        let s = access.simulate(kernel, false, &device, 200_000);
        let t = access.simulate(kernel, true, &device, 200_000);
        println!(
            "  {name:<8} L1: spatial {:>5.1}%  temporal {:>5.1}%  ({:.0}x lower)",
            100.0 * s.l1.hit_rate(),
            100.0 * t.l1.hit_rate(),
            s.l1.hit_rate() / t.l1.hit_rate().max(0.01)
        );
    }

    // 4. The Fig. 10 rearrangements, on real data.
    let clip = Tensor::randn(&[4, 8, 6, 6], 3);
    let sp = to_spatial_layout(&clip).unwrap();
    let tp = to_temporal_layout(&clip).unwrap();
    println!("\nFig. 10 layouts for a [4, 8, 6, 6] clip:");
    println!("  spatial  Q/K/V: {} (batch=frames, seq=pixels)", sp.shape());
    println!("  temporal Q/K/V: {} (batch=pixels, seq=frames)", tp.shape());
    let shape = VideoAttentionKind::Temporal.attention_shape(4, 8, 6, 6, 2);
    println!("  temporal attention shape: batch={} seq={} heads={}", shape.batch, shape.seq_q, shape.heads);
}
