//! # mmgen
//!
//! Umbrella crate re-exporting the full multi-modal generation
//! systems-characterization suite. See the individual crates for detail:
//!
//! * [`tensor`] — numeric CPU tensor engine
//! * [`attn`] — baseline / flash / spatial / temporal attention
//! * [`gpu`] — simulated GPU device, caches, timing
//! * [`kernels`] — kernel cost + access-pattern models
//! * [`graph`] — operator IR and executors
//! * [`models`] — the paper's model suite (Table I + Section III)
//! * [`profiler`] — timeline capture and operator breakdowns
//! * [`analytics`] — fleet, Pareto, roofline, analytical models
//! * [`serve`] — discrete-event multi-GPU serving-cluster simulator
//! * [`core`] — experiment runners reproducing every table and figure
//! * [`telemetry`] — metrics registry, spans, and exporters

pub use mmg_analytics as analytics;
pub use mmg_attn as attn;
pub use mmg_core as core;
pub use mmg_gpu as gpu;
pub use mmg_graph as graph;
pub use mmg_kernels as kernels;
pub use mmg_models as models;
pub use mmg_profiler as profiler;
pub use mmg_serve as serve;
pub use mmg_telemetry as telemetry;
pub use mmg_tensor as tensor;
