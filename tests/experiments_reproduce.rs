//! Every paper artifact regenerates, and the headline numbers fall in the
//! paper's bands. This is the executable version of EXPERIMENTS.md.

use mmgen::core::experiments::{
    fig1, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9, secv, table1, table2, table3,
};
use mmgen::core::{run_experiment, ExperimentId};
use mmgen::gpu::DeviceSpec;

fn spec() -> DeviceSpec {
    DeviceSpec::a100_80gb()
}

#[test]
fn all_experiments_render_nonempty() {
    for id in ExperimentId::ALL {
        let out = run_experiment(id, &spec());
        assert!(out.len() > 40, "{id}: suspiciously short output\n{out}");
    }
}

#[test]
fn fig1_ratios() {
    let r = fig1::run(42);
    assert!((8.0..22.0).contains(&r.gpus_per_param_ratio));
    assert!((1.2..1.7).contains(&r.memory_util_ratio));
}

#[test]
fn table1_taxonomy_ordering() {
    let r = table1::run();
    let get = |m: &str| r.rows.iter().find(|x| x.model == m).unwrap();
    // Table I: SD 1.45B, Imagen 3B (diffusion stack), Parti 20B.
    assert!((0.8..1.8).contains(&get("StableDiffusion").params_b));
    assert!(get("Parti").params_b > 14.0);
    // Diffusion latency driven by huge FLOP counts.
    assert!(get("Imagen").tflops > get("Muse").tflops);
}

#[test]
fn fig4_frontier_and_fig5_roofline() {
    let f4 = fig4::run();
    assert!(f4.rows.iter().filter(|r| r.on_frontier).count() >= 3);
    let f5 = fig5::run(&spec());
    let sd = f5.rows.iter().find(|r| r.model == "StableDiffusion").unwrap();
    let parti = f5.rows.iter().find(|r| r.model == "Parti").unwrap();
    assert!(sd.compute_bound && !parti.compute_bound);
    assert!(sd.intensity > 10.0 * parti.intensity);
}

#[test]
fn fig6_conv_share_hits_forty_percent_band() {
    let r = fig6::run(&spec());
    let sd = r.models.iter().find(|m| m.model == "StableDiffusion").unwrap();
    // Post-flash conv share of the *flash* total ≈ paper's 44%.
    let conv_of_flash = sd.fraction(true, "Conv") / (sd.flash_s / sd.baseline_s);
    assert!((0.30..0.55).contains(&conv_of_flash), "conv share {conv_of_flash}");
    // LLaMA/transformer TTI: linear stays dominant.
    let parti = r.models.iter().find(|m| m.model == "Parti").unwrap();
    assert!(parti.fraction(false, "Linear") > 0.45);
}

#[test]
fn table2_against_paper_values() {
    let r = table2::run(&spec());
    for row in &r.rows {
        let paper = row.paper_e2e.unwrap();
        let tolerance = if row.model == "LLaMA2" { 0.30 } else { 0.12 };
        assert!(
            (row.e2e_speedup - paper).abs() <= tolerance,
            "{}: measured {:.2} vs paper {:.2}",
            row.model,
            row.e2e_speedup,
            paper
        );
    }
}

#[test]
fn table3_correspondence() {
    let r = table3::run();
    assert_eq!(r.rows.len(), 3);
    assert!(r.rows[1].min_query_len > 1, "diffusion is prefill-only");
    assert_eq!(r.rows[2].min_query_len, 1, "transformer TTI decodes");
}

#[test]
fn fig7_trace_shapes() {
    let r = fig7::run(&spec());
    assert!(r.trace("StableDiffusion").unwrap().is_cyclical());
    assert!(r.trace("Parti").unwrap().is_monotone_increasing());
    assert!(r.trace("Muse").unwrap().is_constant());
    assert!(r.trace("StableDiffusion").unwrap().variation >= 4.0);
}

#[test]
fn fig8_distribution_shifts_right() {
    let r = fig8::run(&spec(), &[256, 512, 1024]);
    let max: Vec<usize> = r.series.iter().map(|s| s.max_seq()).collect();
    assert_eq!(max, vec![1024, 4096, 16384]);
}

#[test]
fn fig9_crossover() {
    let r = fig9::run(&spec(), &[64, 512]);
    let big = &r.rows[1];
    assert!(big.attn_baseline_s > big.conv_s, "pre-flash attention dominates at 512");
    assert!(big.conv_s > big.attn_flash_s, "post-flash conv dominates at 512");
}

#[test]
fn fig11_fig12_fig13_temporal_story() {
    let f11 = fig11::run(&spec());
    assert!((1.5..4.5).contains(&f11.time_ratio()));
    assert!((5.0..20.0).contains(&f11.flops_ratio()));

    let f12 = fig12::run(&spec(), 150_000);
    assert!(f12.l1_ratio("gemm") > 5.0);
    assert!(f12.l1_ratio("softmax") > 5.0);

    let f13 = fig13::run(16, &[16, 256, 512]);
    assert_eq!(f13.crossover, Some(257));
}

#[test]
fn secv_analytic_model() {
    let r = secv::run(&spec(), 512);
    assert_eq!(r.analytic_max_seq as usize, r.traced_max_seq);
    assert!((3.7..4.1).contains(&r.memory_exponent));
}

#[test]
fn experiments_serialize_to_json() {
    // Reports are machine-readable for downstream tooling.
    let t2 = table2::run(&spec());
    let s = serde_json::to_string(&t2).unwrap();
    let back: mmgen::core::experiments::table2::Table2Result = serde_json::from_str(&s).unwrap();
    assert_eq!(t2.rows.len(), back.rows.len());
    for (a, b) in t2.rows.iter().zip(back.rows.iter()) {
        assert_eq!(a.model, b.model);
        assert!((a.e2e_speedup - b.e2e_speedup).abs() < 1e-9);
    }
}
