//! Cross-crate integration for the extension substrates: Flash-Decoding,
//! pod scheduling, tensor parallelism, serving, DiT, and the noise
//! schedule working together through the public API.

use mmgen::analytics::parallel::tp_decode_step;
use mmgen::analytics::scheduling::{pod_estimate, simulated_pod_speedup};
use mmgen::analytics::serving::{load_sweep, simulate_mdl, summarize};
use mmgen::attn::AttnImpl;
use mmgen::core::experiments::{ablations, batch, flashdec, pods, tp};
use mmgen::core::{run_experiment, run_experiment_json, ExperimentId};
use mmgen::gpu::DeviceSpec;
use mmgen::models::diffusion::NoiseSchedule;
use mmgen::models::suite::dit::{dit_step_graph, pipeline as dit_pipeline, DitConfig};
use mmgen::models::suite::parti::PartiConfig;
use mmgen::models::suite::stable_diffusion::{pipeline as sd_pipeline, StableDiffusionConfig};
use mmgen::profiler::trace::to_trace_events;
use mmgen::profiler::Profiler;
use mmgen::tensor::Tensor;

fn spec() -> DeviceSpec {
    DeviceSpec::a100_80gb()
}

#[test]
fn extension_experiments_run_and_render() {
    for id in [ExperimentId::FlashDec, ExperimentId::Pods, ExperimentId::Batch, ExperimentId::Tp, ExperimentId::Ablations] {
        let text = run_experiment(id, &spec());
        assert!(text.len() > 60, "{id} too short");
        let json = run_experiment_json(id, &spec());
        let _: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    }
}

#[test]
fn serving_degrades_gracefully_until_saturation() {
    let service = sd_pipeline(&StableDiffusionConfig::default())
        .profile(&Profiler::new(spec(), AttnImpl::Flash))
        .total_time_s();
    let sweep = load_sweep(service, 1.0, &[0.3, 0.6, 0.9], 3000, 11);
    assert!(sweep[0].p99_s < 3.0 * service, "light load near service time");
    assert!(sweep[2].p99_s > sweep[0].p99_s, "queueing grows with load");
}

#[test]
fn pods_raise_serving_capacity_end_to_end() {
    // Profile -> pod simulation -> queue simulation, all through the
    // public API.
    let prof = sd_pipeline(&StableDiffusionConfig::default())
        .profile(&Profiler::new(spec(), AttnImpl::Flash));
    let hot = prof.stage("unet_step").unwrap();
    let gain = simulated_pod_speedup(&hot.timeline, 2);
    assert!(gain > 1.1);
    let service = prof.total_time_s();
    let rate = 0.9 / service * gain; // beyond the plain server's capacity
    let plain = summarize(&simulate_mdl(rate, service, 2000, 3), rate * service);
    let podded =
        summarize(&simulate_mdl(rate, service / gain, 2000, 3), rate * service / gain);
    assert!(plain.p99_s > 2.0 * podded.p99_s);
}

#[test]
fn dit_profile_bridges_the_two_families() {
    let profiler = Profiler::new(spec(), AttnImpl::Flash);
    let dit = dit_pipeline(&DitConfig::default());
    let prof = dit.profile(&profiler);
    // Diffusion-like: compute-bound intensity. Transformer-like: no conv.
    assert!(dit.arithmetic_intensity() > 153.0);
    assert!(prof.breakdown().fraction(mmgen::graph::OpCategory::Conv) < 0.1);
    // And it exports a well-formed chrome trace.
    let step = prof.stage("dit_step").unwrap();
    let events = to_trace_events(&step.timeline);
    assert!(events.len() > 100);
}

#[test]
fn ddim_loop_drives_dit_sized_latents() {
    // The schedule's math operates on the same tensors the graphs size.
    let cfg = DitConfig { image_size: 64, ..Default::default() };
    let g = dit_step_graph(&cfg);
    assert!(g.total_flops() > 0);
    let schedule = NoiseSchedule::scaled_linear(1000);
    let ts = schedule.ddim_timesteps(4).unwrap();
    let x0 = Tensor::randn(&[4 * cfg.latent_res() * cfg.latent_res()], 21);
    let eps = Tensor::randn(&[4 * cfg.latent_res() * cfg.latent_res()], 22);
    let mut x = schedule.add_noise(&x0, &eps, ts[0]).unwrap();
    for (i, &t) in ts.iter().enumerate() {
        x = schedule.ddim_step(&x, &eps, t, ts.get(i + 1).copied()).unwrap();
    }
    // With the exact noise the chain lands back on x0.
    assert!(x.max_abs_diff(&x0).unwrap() < 1e-3);
}

#[test]
fn tp_and_batch_compose_for_decode() {
    // 8-way TP at batch 8: weights amortize across the batch *and* shard
    // across GPUs.
    let parti = PartiConfig::default();
    let single = tp_decode_step(&parti.decoder, 512, 1, 1, &spec());
    let scaled = tp_decode_step(&parti.decoder, 512, 8, 8, &spec());
    let per_token_single = single.total_s;
    let per_token_scaled = scaled.total_s / 8.0;
    assert!(per_token_single > 5.0 * per_token_scaled);
}

#[test]
fn experiment_structs_expose_typed_results() {
    let s = spec();
    assert_eq!(flashdec::run(&s).rows.len(), 8);
    assert!(pods::run(&s).row("StableDiffusion").is_some());
    assert_eq!(tp::run(&s, &[1, 2]).rows.len(), 2);
    assert_eq!(batch::run(&s, &[1, 4]).rows.len(), 2);
    assert!(ablations::run(&s).row("LLaMA2").is_some());
    let e = pod_estimate(
        &sd_pipeline(&StableDiffusionConfig::default())
            .profile(&Profiler::new(s, AttnImpl::Flash))
            .fundamental_period(),
    );
    assert!(e.speedup() >= 1.0);
}
