//! Numeric-plane integration: real math through the public API must agree
//! between attention implementations and with the perf plane's metadata.

use mmgen::attn::video::{video_self_attention, VideoAttentionKind};
use mmgen::attn::{baseline_attention, flash_attention, AttnImpl};
use mmgen::graph::{numeric, ActivationKind, AttnKind, Graph, Op};
use mmgen::tensor::{ops, Tensor};

#[test]
fn transformer_block_flash_equals_baseline() {
    // A full transformer block chain at reduced size.
    let (seq, d, dff) = (24usize, 32usize, 64usize);
    let mut g = Graph::new();
    g.push("ln1", Op::LayerNorm { rows: seq, cols: d });
    g.push(
        "attn",
        Op::Attention {
            shape: mmgen::attn::AttentionShape::self_attn(1, 4, seq, d / 4),
            kind: AttnKind::Causal,
        },
    );
    g.push("fc1", Op::Linear { tokens: seq, in_features: d, out_features: dff });
    g.push("act", Op::Activation { elems: seq * dff, kind: ActivationKind::Gelu });
    g.push("fc2", Op::Linear { tokens: seq, in_features: dff, out_features: d });
    g.push("ln2", Op::LayerNorm { rows: seq, cols: d });

    let x = Tensor::randn(&[seq, d], 11);
    let a = numeric::execute_chain(&g, x.clone(), AttnImpl::Baseline).unwrap();
    let b = numeric::execute_chain(&g, x, AttnImpl::Flash).unwrap();
    assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    assert!(a.all_finite());
}

#[test]
fn unet_like_chain_executes_and_matches_metadata() {
    let mut g = Graph::new();
    g.push("conv_in", Op::Conv2d { batch: 2, c_in: 4, c_out: 8, h: 16, w: 16, kernel: 3, stride: 1 });
    g.push("gn", Op::GroupNorm { batch: 2, channels: 8, h: 16, w: 16, groups: 4 });
    g.push("act", Op::Activation { elems: 2 * 8 * 256, kind: ActivationKind::Silu });
    g.push("down", Op::Conv2d { batch: 2, c_in: 8, c_out: 16, h: 16, w: 16, kernel: 3, stride: 2 });
    g.push("up", Op::Upsample { batch: 2, c: 16, h: 8, w: 8, factor: 2 });
    g.push("conv_out", Op::Conv2d { batch: 2, c_in: 16, c_out: 4, h: 16, w: 16, kernel: 3, stride: 1 });

    let x = Tensor::randn(&[2, 4, 16, 16], 13);
    let y = numeric::execute_chain(&g, x, AttnImpl::Flash).unwrap();
    assert_eq!(y.shape().dims(), &[2, 4, 16, 16]);
    let last = g.nodes().last().unwrap();
    assert_eq!(y.numel() as u64, last.op.output_elems());
}

#[test]
fn video_attention_spatial_temporal_compose() {
    // Apply spatial then temporal attention — the Make-A-Video block order
    // — and verify flash/baseline equivalence of the composite.
    let clip = Tensor::randn(&[6, 8, 4, 4], 17);
    let run = |flash: bool| {
        let s = video_self_attention(&clip, VideoAttentionKind::Spatial, flash).unwrap();
        video_self_attention(&s, VideoAttentionKind::Temporal, flash).unwrap()
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.shape().dims(), clip.shape().dims());
    assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
}

#[test]
fn attention_is_permutation_equivariant_over_batch() {
    // Swapping two batch entries swaps the outputs — a structural property
    // that holds for both implementations.
    let q = Tensor::randn(&[2, 8, 16], 19);
    let k = Tensor::randn(&[2, 8, 16], 20);
    let v = Tensor::randn(&[2, 8, 16], 21);
    let swap = |t: &Tensor| {
        let d = t.data();
        let half = d.len() / 2;
        let mut out = Vec::with_capacity(d.len());
        out.extend_from_slice(&d[half..]);
        out.extend_from_slice(&d[..half]);
        Tensor::from_vec(out, t.shape().dims()).unwrap()
    };
    let o1 = flash_attention(&q, &k, &v, 4).unwrap();
    let o2 = flash_attention(&swap(&q), &swap(&k), &swap(&v), 4).unwrap();
    assert!(swap(&o1).max_abs_diff(&o2).unwrap() < 1e-5);
}

#[test]
fn softmax_value_bounds_propagate_through_attention() {
    // Attention outputs are convex combinations of V rows: bounded by V's
    // extrema.
    let q = Tensor::randn(&[1, 12, 8], 23);
    let k = Tensor::randn(&[1, 12, 8], 24);
    let v = Tensor::randn(&[1, 12, 8], 25);
    let (vmin, vmax) = v
        .data()
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    for o in baseline_attention(&q, &k, &v).unwrap().data() {
        assert!(*o >= vmin - 1e-5 && *o <= vmax + 1e-5);
    }
}

#[test]
fn elementwise_and_scale_compose_linearly() {
    let x = Tensor::randn(&[64], 29);
    let two_x = ops::add(&x, &x).unwrap();
    let scaled = ops::scale(&x, 2.0);
    assert!(two_x.max_abs_diff(&scaled).unwrap() < 1e-6);
}
