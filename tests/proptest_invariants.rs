//! Property-based invariants over the core data structures, via proptest.

use mmgen::attn::{baseline_attention, flash_attention, AttentionShape, AttnImpl};
use mmgen::gpu::{CacheConfig, SetAssociativeCache};
use mmgen::kernels::gemm::{gemm_compute_eff, GemmShape};
use mmgen::tensor::{ops, Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flash attention (any block size) is numerically identical to
    /// baseline attention — the contract that justifies modelling both
    /// with the same FLOP count.
    #[test]
    fn flash_equals_baseline(
        b in 1usize..3,
        sq in 1usize..24,
        skv in 1usize..24,
        d in 1usize..12,
        block in 1usize..40,
        seed in 0u64..1000,
    ) {
        let q = Tensor::randn(&[b, sq, d], seed);
        let k = Tensor::randn(&[b, skv, d], seed + 1);
        let v = Tensor::randn(&[b, skv, d], seed + 2);
        let base = baseline_attention(&q, &k, &v).unwrap();
        let flash = flash_attention(&q, &k, &v, block).unwrap();
        prop_assert!(base.max_abs_diff(&flash).unwrap() < 1e-4);
    }

    /// Softmax rows always sum to 1 and stay in [0, 1].
    #[test]
    fn softmax_is_a_distribution(rows in 1usize..8, cols in 1usize..32, seed in 0u64..1000) {
        let x = ops::scale(&Tensor::randn(&[rows, cols], seed), 10.0);
        let y = ops::softmax_last(&x).unwrap();
        for r in 0..rows {
            let row = &y.data()[r * cols..(r + 1) * cols];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Permutation round-trips restore the original tensor.
    #[test]
    fn permute_roundtrip(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5, seed in 0u64..1000) {
        let t = Tensor::randn(&[d0, d1, d2], seed);
        let p = t.permute(&[2, 0, 1]).unwrap();
        let back = p.permute(&[1, 2, 0]).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Shape offsets are a bijection onto 0..numel.
    #[test]
    fn shape_offsets_bijective(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
        let s = Shape::new(&[d0, d1, d2]);
        let mut seen = vec![false; s.numel()];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let off = s.offset(&[i, j, k]);
                    prop_assert!(!seen[off], "duplicate offset {}", off);
                    seen[off] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Cache statistics are consistent: hits ≤ accesses, hit rate in [0,1],
    /// and re-running an identical short stream only improves the hit rate.
    #[test]
    fn cache_stats_consistent(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
        let mut c = SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        });
        for &a in &addrs {
            c.access(a);
        }
        let first = c.stats();
        prop_assert!(first.hits <= first.accesses);
        prop_assert!((0.0..=1.0).contains(&first.hit_rate()));
        for &a in &addrs {
            c.access(a);
        }
        let second = c.stats();
        prop_assert!(second.hits >= first.hits);
    }

    /// A working set that fits entirely in the cache always hits after the
    /// first pass.
    #[test]
    fn resident_set_always_hits(lines in 1usize..8, passes in 2usize..5) {
        let mut c = SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 64 * 64, // 64 lines, plenty of ways
            line_bytes: 64,
            ways: 8,
        });
        for _ in 0..passes {
            for l in 0..lines {
                c.access((l * 64) as u64);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses - s.hits, lines as u64, "only compulsory misses");
    }

    /// GEMM efficiency stays in its clamped range and never decreases when
    /// the reduction deepens (all else equal).
    #[test]
    fn gemm_eff_bounded_and_monotone_in_k(
        b in 1usize..64,
        m in 1usize..512,
        n in 1usize..512,
        k in 1usize..512,
    ) {
        let e1 = gemm_compute_eff(GemmShape::batched(b, m, n, k), 108);
        prop_assert!((0.0..=1.0).contains(&e1));
        let e2 = gemm_compute_eff(GemmShape::batched(b, m, n, k * 2), 108);
        prop_assert!(e2 >= e1 - 1e-9, "deeper k reduced eff: {} -> {}", e1, e2);
    }

    /// Attention byte model: flash never moves more HBM bytes than
    /// baseline, and the gap grows with query length.
    #[test]
    fn flash_bytes_never_exceed_baseline(
        batch in 1usize..8,
        heads in 1usize..16,
        sq in 1usize..2048,
        skv in 1usize..2048,
        d in 8usize..128,
    ) {
        let s = AttentionShape { batch, heads, seq_q: sq, seq_kv: skv, head_dim: d };
        let base = s.costs(AttnImpl::Baseline, 2);
        let flash = s.costs(AttnImpl::Flash, 2);
        prop_assert!(flash.hbm_bytes <= base.hbm_bytes);
        prop_assert_eq!(flash.flops, base.flops);
    }

    /// Group norm output is mean-zero within every group, for any valid
    /// grouping.
    #[test]
    fn group_norm_zero_mean(
        c_groups in 1usize..4,
        group_width in 1usize..4,
        hw in 2usize..6,
        seed in 0u64..1000,
    ) {
        let c = c_groups * group_width;
        let x = Tensor::randn(&[1, c, hw, hw], seed);
        let y = ops::group_norm(&x, c_groups, 1e-5).unwrap();
        let elems = group_width * hw * hw;
        for g in 0..c_groups {
            let s: f32 = y.data()[g * elems..(g + 1) * elems].iter().sum();
            prop_assert!((s / elems as f32).abs() < 1e-3);
        }
    }

    /// Upsample then avg-pool by the same factor is the identity.
    #[test]
    fn upsample_pool_roundtrip(
        c in 1usize..4,
        hw in 1usize..6,
        factor in 1usize..4,
        seed in 0u64..1000,
    ) {
        let x = Tensor::randn(&[1, c, hw, hw], seed);
        let up = ops::upsample_nearest2d(&x, factor).unwrap();
        let back = ops::avg_pool2d(&up, factor).unwrap();
        prop_assert!(x.max_abs_diff(&back).unwrap() < 1e-5);
    }
}
