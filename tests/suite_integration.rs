//! Cross-crate integration: the full model suite, profiled end-to-end on
//! the simulated device, must exhibit the paper's headline findings.

use mmgen::attn::AttnImpl;
use mmgen::gpu::DeviceSpec;
use mmgen::graph::{AttnKind, OpCategory};
use mmgen::models::{suite, ModelId, PipelineProfile};
use mmgen::profiler::Profiler;

fn profile(id: ModelId, attn: AttnImpl) -> PipelineProfile {
    suite::build(id).profile(&Profiler::new(DeviceSpec::a100_80gb(), attn))
}

#[test]
fn every_model_profiles_under_both_attention_impls() {
    for id in ModelId::ALL {
        let base = profile(id, AttnImpl::Baseline);
        let flash = profile(id, AttnImpl::Flash);
        assert!(base.total_time_s() > 0.0, "{id}");
        assert!(
            flash.total_time_s() <= base.total_time_s() * 1.001,
            "{id}: flash must not slow the model down"
        );
        assert_eq!(base.total_flops(), {
            // FLOPs are a property of the model, not the kernel impl
            // (up to the small softmax-side terms removed by fusion).
            let f = flash.total_flops() as f64;
            let b = base.total_flops() as f64;
            assert!((b / f) < 1.05, "{id}: flop mismatch {b} vs {f}");
            base.total_flops()
        });
    }
}

#[test]
fn flash_speedup_ordering_matches_paper() {
    // Table II ordering: SD gains most; ProdImage and MakeAVideo least.
    let speedup = |id: ModelId| {
        profile(id, AttnImpl::Baseline).total_time_s()
            / profile(id, AttnImpl::Flash).total_time_s()
    };
    let sd = speedup(ModelId::StableDiffusion);
    let prod = speedup(ModelId::ProdImage);
    let mav = speedup(ModelId::MakeAVideo);
    assert!(sd > 1.5, "SD speedup {sd}");
    assert!(prod < 1.15, "ProdImage speedup {prod}");
    assert!(mav < 1.2, "MakeAVideo speedup {mav}");
    for id in ModelId::ALL {
        assert!(sd >= speedup(id) - 1e-9, "{id} outgained SD");
    }
}

#[test]
fn diffusion_models_shift_bottleneck_to_conv_after_flash() {
    for id in [ModelId::StableDiffusion, ModelId::Imagen, ModelId::ProdImage] {
        let b = profile(id, AttnImpl::Flash).breakdown();
        assert!(
            b.seconds(OpCategory::Conv) > b.seconds(OpCategory::Attention),
            "{id}: conv must dominate attention post-flash"
        );
    }
}

#[test]
fn llm_and_transformer_tti_keep_attention_linear_dominance() {
    for id in [ModelId::Llama2, ModelId::Muse, ModelId::Parti, ModelId::Phenaki] {
        let b = profile(id, AttnImpl::Flash).breakdown();
        let dominant = b.seconds(OpCategory::Linear) + b.seconds(OpCategory::Attention);
        assert!(
            dominant / b.total_s() > 0.6,
            "{id}: linear+attention are {:.0}%",
            100.0 * dominant / b.total_s()
        );
        assert!(b.seconds(OpCategory::Conv) < 0.05 * b.total_s(), "{id} has no real conv");
    }
}

#[test]
fn temporal_attention_dominates_attention_time_in_ttv() {
    // Paper: temporal attention accounts for over 60% of total attention
    // time in TTV models.
    let p = profile(ModelId::MakeAVideo, AttnImpl::Flash);
    let temporal = p.attention_time_by_kind(AttnKind::Temporal);
    let spatial = p.attention_time_by_kind(AttnKind::SpatialSelf);
    let cross = p.attention_time_by_kind(AttnKind::Cross);
    assert!(temporal / (temporal + spatial + cross) > 0.6);
}

#[test]
fn pixel_diffusion_spends_more_conv_share_than_latent() {
    // Section IV-A: pixel-based models spend ~15 points more on conv.
    let conv_share = |id: ModelId| {
        let b = profile(id, AttnImpl::Baseline).breakdown();
        b.fraction(OpCategory::Conv)
    };
    let imagen = conv_share(ModelId::Imagen);
    let sd = conv_share(ModelId::StableDiffusion);
    assert!(imagen > sd + 0.10, "imagen {imagen} vs sd {sd}");
}

#[test]
fn groupnorm_visible_in_diffusion_breakdowns() {
    // Paper: 4–11% of execution time attributed to GroupNorm.
    for id in [ModelId::StableDiffusion, ModelId::Imagen] {
        let b = profile(id, AttnImpl::Baseline).breakdown();
        let f = b.fraction(OpCategory::GroupNorm);
        assert!((0.01..0.20).contains(&f), "{id}: groupnorm {f}");
    }
}

#[test]
fn profiles_are_deterministic() {
    let a = profile(ModelId::StableDiffusion, AttnImpl::Flash);
    let b = profile(ModelId::StableDiffusion, AttnImpl::Flash);
    assert_eq!(a.total_time_s(), b.total_time_s());
    assert_eq!(a.total_flops(), b.total_flops());
}
