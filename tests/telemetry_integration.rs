//! End-to-end telemetry integration: the counters the instrumented stack
//! records must reproduce the paper's cache-locality findings without
//! consulting the simulators' own return values.

use mmgen::attn::AttnImpl;
use mmgen::gpu::DeviceSpec;
use mmgen::kernels::access::{AttentionKernel, VideoAttentionAccess};
use mmgen::models::{suite, ModelId};
use mmgen::profiler::Profiler;
use mmgen::telemetry::Registry;

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.counter(name).get()
}

fn l1_hit_rate(registry: &Registry) -> f64 {
    let accesses = counter(registry, "gpu_l1_accesses_total");
    assert!(accesses > 0, "no L1 accesses recorded");
    counter(registry, "gpu_l1_hits_total") as f64 / accesses as f64
}

/// Profiling Stable Diffusion's UNet with cache simulation enabled must
/// leave a healthy nonzero L1 hit rate in the registry, plus the core
/// device counters every profiled graph produces.
#[test]
fn sd_unet_profile_records_nonzero_l1_hit_rate() {
    let registry = Registry::new();
    let pipeline = suite::build(ModelId::StableDiffusion);
    let stage = pipeline
        .stages
        .iter()
        .find(|s| s.name == "unet_step")
        .expect("SD pipeline has a unet_step stage");
    let timeline = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Flash, &registry)
        .with_cache_sim(20_000)
        .profile(&stage.graph);
    assert!(timeline.total_time_s() > 0.0);
    let rate = l1_hit_rate(&registry);
    assert!(rate > 0.0 && rate < 1.0, "L1 hit rate {rate}");
    assert!(counter(&registry, "gpu_kernel_launches_total") > 0);
    assert!(counter(&registry, "gpu_hbm_bytes_total") > 0);
    assert!(counter(&registry, "gpu_flops_total") > 0);
    // Every op opened a span carrying its attribution.
    assert_eq!(registry.finished_spans().len(), stage.graph.len());
}

/// Fig. 12 via telemetry alone: replaying the temporal GEMM stream
/// through the caches collapses the L1 hit rate roughly an order of
/// magnitude below the spatial stream's (paper: ~10x).
#[test]
fn fig12_temporal_l1_collapse_visible_in_counters() {
    let spec = DeviceSpec::a100_80gb();
    let access = VideoAttentionAccess::make_a_video_base();
    let spatial = Registry::new();
    let temporal = Registry::new();
    let _ = access.simulate_with_registry(AttentionKernel::Gemm, false, &spec, 200_000, &spatial);
    let _ = access.simulate_with_registry(AttentionKernel::Gemm, true, &spec, 200_000, &temporal);
    let spatial_rate = l1_hit_rate(&spatial);
    let temporal_rate = l1_hit_rate(&temporal);
    assert!(spatial_rate > 0.5, "spatial L1 {spatial_rate}");
    // Floor the temporal rate as Fig12Result::l1_ratio does: the idealized
    // temporal trace may have no reuse at all.
    let ratio = spatial_rate / temporal_rate.max(0.01);
    assert!(ratio > 5.0, "spatial {spatial_rate} vs temporal {temporal_rate}");
}
