//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed iterations and prints a
//! mean-time line — no statistics engine, no HTML reports, but `cargo
//! bench` produces comparable relative numbers and, crucially, still
//! *renders every paper artifact* the bench targets print.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for parity with `criterion::black_box` users.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Caps the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_one(self, &id.to_string(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{function}/{parameter}") }
    }

    /// An id that is just the parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Hands the routine-under-test to the driver.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    budget: Duration,
    total: Duration,
    timed_iters: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        let mut done = 0usize;
        while done < self.iters && start.elapsed() < self.budget {
            black_box(routine());
            done += 1;
        }
        self.total = start.elapsed();
        self.timed_iters = done.max(1);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, f: &mut F) {
    let mut bencher = Bencher {
        iters: criterion.sample_size,
        budget: criterion.measurement_time,
        total: Duration::ZERO,
        timed_iters: 1,
    };
    f(&mut bencher);
    let mean = bencher.total.as_secs_f64() / bencher.timed_iters as f64;
    println!(
        "bench: {label:<48} {:>12.3} us/iter ({} iters)",
        mean * 1e6,
        bencher.timed_iters
    );
}

/// Declares a benchmark entry point collecting the listed targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("stub/identity", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("stub");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn driver_runs_targets() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(50));
        target(&mut c);
    }
}
