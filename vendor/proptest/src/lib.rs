//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro over functions whose arguments are
//! `ident in strategy` pairs, integer/float range strategies,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failing case panics with the
//! assertion message directly, which is enough for the invariant suites
//! here.

#![deny(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, usize);

    impl Strategy for ::std::ops::Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<i32> {
        type Value = i32;

        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (i64::from(self.end) - i64::from(self.start)) as u64;
            (i64::from(self.start) + (rng.next_u64() % span) as i64) as i32
        }
    }

    impl Strategy for ::std::ops::Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add((rng.next_u64() % span) as i64)
        }
    }

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with a size drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: ::std::ops::Range<usize>,
    }

    /// A `Vec` strategy: each element from `elem`, length from `size`.
    pub fn vec<S: Strategy>(elem: S, size: ::std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test deterministic execution state.

    /// Number of cases to run per property.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Cases per property test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator seeded from the property name, so every run of
    /// the suite explores the same cases (reproducible CI).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when the assumption fails. The stub simply
/// moves on to the next generated case (no rejection accounting).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property; panics with the formatted
/// message on failure (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 1usize..10, b in 0u64..100) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 100);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
