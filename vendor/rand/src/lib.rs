//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible implementation of the
//! pieces it actually calls: [`SeedableRng`], [`rngs::StdRng`], and
//! [`distributions::Uniform`] / [`distributions::Distribution`].
//!
//! The generator is SplitMix64 — not the ChaCha12 of the real `StdRng`,
//! but statistically strong enough for the Monte-Carlo workloads here
//! (queueing simulations, synthetic fleets, Gaussian tensor init), and
//! deterministic under a seed, which is all the callers rely on.

#![deny(missing_docs)]

/// A random number generator core: the subset of `rand_core::RngCore`
/// the workspace needs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when
            // used as a 64-bit stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed ^ 0x5DEE_CE66_D123_4567 };
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod distributions {
    //! Sampling distributions.

    use super::RngCore;

    /// A distribution over values of `T` sampled with an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates the half-open range `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`, matching the real crate.
        #[must_use]
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.low + unit * (self.high - self.low)
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.low + unit * (self.high - self.low)
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            let span = self.high - self.low;
            // Modulo bias is < 2^-40 for the spans used here.
            self.low + rng.next_u64() % span
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let span = (self.high - self.low) as u64;
            self.low + (rng.next_u64() % span) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::SeedableRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let u = Uniform::new(0.0f64, 1.0);
        for _ in 0..100 {
            assert_eq!(u.sample(&mut a).to_bits(), u.sample(&mut b).to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let u = Uniform::new(0.0f64, 1.0);
        assert_ne!(u.sample(&mut a).to_bits(), u.sample(&mut b).to_bits());
    }

    #[test]
    fn uniform_stays_in_range_and_has_sane_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let u = Uniform::new(2.0f64, 4.0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = u.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn f32_uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = Uniform::new(f32::EPSILON, 1.0f32);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!(x >= f32::EPSILON && x < 1.0);
        }
    }
}
