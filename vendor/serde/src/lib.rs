//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build container has no crates.io access, so this crate provides an
//! API-compatible (for this workspace's call sites) serialization pair:
//!
//! * [`Serialize`] — converts a value into a JSON-like [`Value`] tree;
//! * [`Deserialize`] — reconstructs a value from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` — provided by the companion
//!   `serde_derive` proc-macro crate for plain structs with named fields.
//!
//! Unlike real serde there is no pluggable `Serializer`/`Deserializer`
//! pair: the data model *is* the [`Value`] tree, and the companion
//! `serde_json` stub renders/parses that tree as JSON text. That is exactly
//! the capability the workspace exercises (derive + `serde_json`
//! round-trips), with none of the trait machinery.

#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number, kept in its narrowest faithful representation so that
/// integers survive round-trips exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The number as an `f64` (lossless for |x| < 2^53).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F64(_) => None,
        }
    }
}

/// A JSON-like value tree — the serialization data model.
///
/// Object fields keep insertion order (like `serde_json`'s
/// `preserve_order` feature), so derived structs serialize their fields in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered field list).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether this value is an object.
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this value is an array.
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a field of an object (serde_json-compatible name).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.field(name)
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U64(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::I64(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number::F64(v))
        } else {
            Value::Null
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// An error for a missing struct field.
    #[must_use]
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {type_name}"))
    }

    /// An error for a type mismatch.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts `self` into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
        usize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).map(|n| n as isize)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json serializes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if arr.len() != $len {
                    return Err(Error::msg(format!(
                        "expected a {}-tuple, found array of {}", $len, arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);
impl_tuple!(A:0, B:1, C:2, D:3 ; 4);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, as tests compare serialized text.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::Number(Number::U64(3)));
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(v.is_object());
        assert_eq!(v.field("a"), Some(&Value::Bool(true)));
        assert_eq!(v.field("b"), None);
    }

    #[test]
    fn signed_integers_keep_sign() {
        assert_eq!((-3i64).to_value(), Value::Number(Number::I64(-3)));
        assert_eq!(i64::from_value(&Value::Number(Number::I64(-3))).unwrap(), -3);
        assert_eq!(7i32.to_value(), Value::Number(Number::U64(7)));
    }

    #[test]
    fn tuple_roundtrip() {
        let v = ("a".to_owned(), 1.5f64).to_value();
        let back: (String, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, ("a".to_owned(), 1.5));
    }
}
