//! `#[derive(Serialize, Deserialize)]` for the workspace's offline serde
//! stub.
//!
//! Supports exactly what the workspace uses: non-generic structs with
//! named fields (and unit-variant enums, serialized as their variant
//! name). The input is parsed directly from the token stream — no `syn`,
//! no `quote` — and the generated impls target the stub's value-tree
//! model (`serde::Serialize::to_value` / `serde::Deserialize::from_value`).

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Input {
    /// Struct name + named fields.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// Parses `struct Name { fields }` or `enum Name { Variants }` out of the
/// derive input token stream.
fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Skip a following `(crate)`-style restriction.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                let _ = iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => kind = Some(s),
                    _ if kind.is_some() && name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde stub derive: generic types are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let kind = kind.expect("serde stub derive: no struct/enum keyword found");
                let name = name.expect("serde stub derive: unnamed item");
                return match kind.as_str() {
                    "struct" => Input::Struct(name, parse_named_fields(g.stream())),
                    _ => Input::Enum(name, parse_unit_variants(g.stream())),
                };
            }
            _ => {}
        }
    }
    panic!("serde stub derive: only braced structs and enums are supported")
}

/// Extracts field names from the body of a braced struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field start: skip attributes and visibility.
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("serde stub derive: unexpected token `{other}` at field start")
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Consume the type up to a top-level comma, tracking angle-bracket
        // depth (commas inside `<...>` belong to the type).
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Extracts unit-variant names from the body of a braced enum.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                // Any payload group or discriminant is unsupported.
                match iter.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        let _ = iter.next();
                    }
                    Some(other) => panic!(
                        "serde stub derive: enum variants with payloads are not supported \
                         (found `{other}` after `{id}`)"
                    ),
                }
            }
            other => panic!("serde stub derive: unexpected enum token `{other}`"),
        }
    }
    variants
}

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde stub derive: generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::missing_field(\"{name}\", \"{f}\"))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             ::std::option::Option::Some(s) => match s {{\n{arms}\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"string\", v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde stub derive: generated Deserialize impl parses")
}
