//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`], and
//! [`Value`] (re-exported from the serde stub, which owns the data model).
//!
//! The renderer writes floats with Rust's shortest-round-trip formatting
//! and keeps integers integral, so `to_string` → `from_str` round-trips
//! are exact — the property the workspace's serde tests assert.

#![deny(missing_docs)]

use std::fmt::Write as _;

pub use serde::Error;
pub use serde::Number;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the stub's data model; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the stub's data model; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Converts a value into the [`Value`] tree.
///
/// # Errors
///
/// Infallible for the stub's data model; the `Result` mirrors serde_json.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from the [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] from JSON-like syntax. Supports the shapes the
/// workspace uses: object/array literals, `null`, and embedded
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if !v.is_finite() => out.push_str("null"),
        Number::F64(v) => {
            // `{:?}` is Rust's shortest representation that round-trips;
            // it always includes a `.` or an exponent for non-integers and
            // renders integral floats as `1.0`, which `from_str` reads
            // back as the same f64.
            let _ = write!(out, "{v:?}");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Handle a UTF-16 surrogate pair.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !(self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u'))
                                {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::msg("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 character. Validate only
                    // the character's own bytes — validating the whole tail
                    // here would make string parsing quadratic in input size.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::msg("invalid UTF-8")),
                    };
                    let end = self.pos + len;
                    let chunk = self
                        .bytes
                        .get(self.pos..end)
                        .ok_or_else(|| Error::msg("invalid UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`; leaves `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        let digits = self
            .bytes
            .get(start..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error::msg("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        let n = if is_float {
            Number::F64(text.parse::<f64>().map_err(|_| Error::msg("bad number"))?)
        } else if text.starts_with('-') {
            Number::I64(text.parse::<i64>().map_err(|_| Error::msg("bad number"))?)
        } else {
            Number::U64(text.parse::<u64>().map_err(|_| Error::msg("bad number"))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_shortest_roundtrip() {
        let x = 0.1f64 + 0.2f64;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":true}"#;
        let v: Value = from_str(text).unwrap();
        assert!(v.is_object());
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\\tab\tünicode €".to_owned();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parses() {
        let back: String = from_str(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(back, "é😀");
    }

    #[test]
    fn raw_multibyte_utf8_parses() {
        // 2-, 3-, and 4-byte sequences embedded directly in the text.
        let s = "é — 😀 ₿";
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
